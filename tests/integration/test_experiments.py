"""Integration tests for the per-figure experiments (quick scale).

The heavyweight checks (the paper's qualitative shapes at the quick scale)
run for the experiments where the effect is strongest — Fig. 11, Fig. 14,
Fig. 15 and Table 1 — and a lighter "runs and reports" check covers the rest,
so the suite stays fast while every experiment is exercised.
"""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, get_experiment
from repro.harness.runner import ExperimentRunner

ALL_IDS = sorted(EXPERIMENTS)
KEY_IDS = ["fig11", "fig14", "fig15", "table1"]


def run_scaled(experiment_id, thread_counts=None, total_ops=None):
    experiment = get_experiment(experiment_id)
    config = experiment.quick_config
    if thread_counts is not None or total_ops is not None:
        config = config.scaled(thread_counts=thread_counts, total_ops=total_ops)
    return experiment, ExperimentRunner().run(config)


class TestRegistry:
    def test_every_figure_and_table_is_registered(self):
        assert set(ALL_IDS) == {
            "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "table1",
        }

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_experiments_have_full_and_quick_configs(self):
        for experiment_id in ALL_IDS:
            experiment = EXPERIMENTS[experiment_id]
            assert experiment.full_config.total_ops >= experiment.quick_config.total_ops
            assert max(experiment.full_config.thread_counts) >= max(
                experiment.quick_config.thread_counts
            )
            assert experiment.shape_checks, f"{experiment_id} has no shape checks"

    def test_full_configs_match_paper_axes(self):
        assert max(EXPERIMENTS["fig08"].full_config.thread_counts) == 256
        assert EXPERIMENTS["fig12"].full_config.thread_counts[-1] == 64
        assert EXPERIMENTS["table1"].full_config.thread_counts == (128,)
        assert EXPERIMENTS["fig14"].full_config.mechanisms == ("explicit", "autosynch")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            EXPERIMENTS["fig08"].run(scale="gigantic")


@pytest.mark.parametrize("experiment_id", [i for i in ALL_IDS if i not in KEY_IDS])
def test_experiment_runs_and_reports(experiment_id):
    experiment, series = run_scaled(experiment_id, thread_counts=(2, 4), total_ops=200)
    report = experiment.report(series)
    assert experiment.experiment_id in report
    for mechanism in experiment.quick_config.mechanisms:
        assert mechanism in report
    assert series.x_values() == [2, 4]


@pytest.mark.parametrize("experiment_id", KEY_IDS)
def test_key_experiment_shapes_hold_at_quick_scale(experiment_id):
    experiment = get_experiment(experiment_id)
    series = experiment.run(scale="quick")
    failures = [desc for desc, ok in experiment.check_shapes(series) if not ok]
    assert not failures, f"{experiment_id} shape checks failed: {failures}"


def test_fig15_counts_grow_with_consumers_for_explicit():
    experiment, series = run_scaled("fig15")
    xs = series.x_values()
    explicit_first = series.point_for("explicit", xs[0]).context_switches
    explicit_last = series.point_for("explicit", xs[-1]).context_switches
    assert explicit_last > explicit_first


def test_table1_report_contains_breakdown_columns():
    experiment, series = run_scaled("table1")
    report = experiment.report(series)
    for column in ("await", "relay_signal", "tag_manager", "total"):
        assert column in report


def test_cli_list_and_single_run(capsys):
    from repro.experiments.__main__ import main

    assert main(["--list"]) == 0
    listing = capsys.readouterr().out
    assert "fig14" in listing and "table1" in listing
