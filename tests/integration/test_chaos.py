"""The chaos contract, per fault type: recovered or classified, never hung.

Each injected fault must leave the run in one of two states:

* **recovered** — the run completes ``ok``, with the monitor's degradation
  counters showing how (self-heal wake, predicate quarantine, incremental
  demotion, wait timeout);
* **classified** — a bounded verdict the fault's plan declares acceptable
  (``timeout``, ``abandonment``, ``missed_signal``, ``deadlock``, ...).

A silent hang is never acceptable.  The tests scan a deterministic band of
seeds (the simulation kernel makes every schedule replayable) rather than
hard-coding single magic seeds.
"""

from __future__ import annotations

import json

import pytest

from repro.explore import (
    ChaosReport,
    ExploreTask,
    chaos_sweep,
    kind_is_acceptable,
    replay_repro,
    run_schedule,
)
from repro.faults import (
    DroppedSignalFault,
    FaultPlan,
    FaultSpec,
    create_fault_plan,
    get_fault_plan,
    register_fault,
    register_fault_plan,
    unregister_fault,
    unregister_fault_plan,
)
from repro.runtime.simulation import RandomScheduler

SEED_BAND = range(20)
THREADS = 3
OPS = 6


def _run(plan, seed, problem="bounded_buffer", mechanism="autosynch",
         self_heal=True, wait_timeout=None):
    task = ExploreTask(
        problem=problem,
        mechanism=mechanism,
        threads=THREADS,
        total_ops=OPS,
        seed=seed,
        fault_plan=create_fault_plan(plan).to_dict(),
        self_heal=self_heal,
        wait_timeout=wait_timeout,
    )
    return task, run_schedule(task, RandomScheduler(seed=seed))


def _scan(plan, **kwargs):
    """Run the whole seed band; return [(seed, outcome)] in seed order."""
    return [(seed, _run(plan, seed, **kwargs)[1]) for seed in SEED_BAND]


def _assert_contract(plan_name, outcomes):
    """Every outcome is acceptable to the plan; nothing hung."""
    acceptable = get_fault_plan(plan_name).acceptable_kinds
    for seed, outcome in outcomes:
        assert outcome.kind != "hang", f"seed {seed} hung: {outcome.message}"
        assert kind_is_acceptable(outcome.kind, acceptable), (
            f"seed {seed}: kind {outcome.kind!r} outside acceptable set "
            f"{sorted(acceptable)} — {outcome.message}"
        )


class TestSpuriousWakeup:
    def test_spurious_wakeups_are_absorbed(self):
        outcomes = _scan("spurious_wakeup")
        _assert_contract("spurious_wakeup", outcomes)
        fired = [o for _, o in outcomes if o.fault_events]
        assert fired, "fault never fired across the seed band"
        # Spurious wakeups must be invisible: every faulted run completes.
        assert all(o.ok for o in fired)


class TestDroppedSignal:
    def test_without_healing_some_seed_deadlocks(self):
        outcomes = _scan("dropped_signal", self_heal=False)
        _assert_contract("dropped_signal", outcomes)
        kinds = {o.kind for _, o in outcomes}
        assert "deadlock" in kinds, (
            "no seed in the band lost its signal terminally; "
            f"saw only {sorted(kinds)}"
        )

    def test_self_heal_recovers_the_dropped_signal(self):
        without = {s: o.kind for s, o in _scan("dropped_signal", self_heal=False)}
        with_heal = _scan("dropped_signal", self_heal=True)
        _assert_contract("dropped_signal", with_heal)
        healed = [
            o for s, o in with_heal
            if without[s] == "deadlock"
        ]
        assert healed, "no deadlocking seed to contrast against"
        for outcome in healed:
            assert outcome.ok, f"self-heal did not recover: {outcome.message}"
            assert outcome.monitor_stats["self_heal_recoveries"] > 0

    def test_wait_timeout_recovers_the_run_without_a_verdict(self):
        # A dropped notification loses the wake-up but not the state change,
        # so the timed wake re-evaluates the predicate, finds it already
        # true, and continues: the run completes with no verdict at all.
        without = _scan("dropped_signal", self_heal=False)
        deadlocked = [s for s, o in without if o.kind == "deadlock"]
        assert deadlocked
        for seed in deadlocked:
            _, outcome = _run(
                "dropped_signal", seed, self_heal=False, wait_timeout=200
            )
            assert outcome.ok, (
                f"seed {seed}: timed wake did not recover: {outcome.message}"
            )


class TestTimeoutVerdict:
    def test_stranded_waiters_get_a_timeout_verdict_not_a_deadlock(self):
        # A crashed thread can strand its peers on predicates that will
        # never become true (unlike a dropped signal, the state change is
        # lost with the thread).  Untimed: deadlock.  Timed: the expiry
        # surfaces as a bounded, classified ``timeout`` verdict.
        deadlocked = [
            seed
            for seed, outcome in _scan(
                "thread_crash", problem="sleeping_barber", self_heal=False
            )
            if outcome.kind == "deadlock"
        ]
        assert deadlocked, "no crash seed stranded a waiter"
        for seed in deadlocked:
            _, outcome = _run(
                "thread_crash",
                seed,
                problem="sleeping_barber",
                self_heal=False,
                wait_timeout=50,
            )
            assert outcome.kind == "timeout", (
                f"seed {seed}: expected timeout, got {outcome.kind}: "
                f"{outcome.message}"
            )
            assert outcome.monitor_stats["wait_timeouts"] > 0


class TestAbortUnwindNeverReparks:
    @pytest.mark.parametrize("seed", [5, 8])
    def test_crash_plus_wait_timeout_classifies_instead_of_hanging(self, seed):
        # Regression: when a WaitTimeout aborted the run, the stranded
        # peers unwound through their condition waits and re-entered
        # lock_acquire during cleanup — where, with their one-shot wake-all
        # token already consumed, the kernel parked them again and the run
        # wedged (zero CPU) until the external run timeout declared a hang.
        # The kernel must refuse to park once the run is unwinding.  These
        # two seeds hit the exact interleaving; run_timeout=30 bounds the
        # test if the hang ever comes back.
        task = ExploreTask(
            problem="sleeping_barber",
            mechanism="baseline",
            threads=THREADS,
            total_ops=OPS,
            seed=seed,
            fault_plan=create_fault_plan("thread_crash").to_dict(),
            self_heal=False,
            wait_timeout=100,
            run_timeout=30,
        )
        outcome = run_schedule(task, RandomScheduler(seed=seed))
        assert outcome.kind == "timeout", (
            f"expected a classified timeout, got {outcome.kind!r}: "
            f"{outcome.message}"
        )


class TestDelayedSignal:
    def test_delays_are_bounded_verdicts_or_recovered(self):
        outcomes = _scan("delayed_signal")
        _assert_contract("delayed_signal", outcomes)
        assert any(o.fault_events for _, o in outcomes)


class TestThreadCrash:
    def test_crashes_are_always_classified(self):
        outcomes = _scan("thread_crash")
        _assert_contract("thread_crash", outcomes)
        fired = [o for _, o in outcomes if o.fault_events]
        assert fired
        # A crash that leaves the monitor abandoned (or the workload short)
        # must surface as a verdict, not a hang; at least one seed in the
        # band shows the non-ok side of the contract.
        assert any(not o.ok for o in fired)


class TestPredicateError:
    def test_compiled_failures_quarantine_to_the_interpreter(self):
        outcomes = _scan("predicate_error")
        _assert_contract("predicate_error", outcomes)
        fired = [o for _, o in outcomes if o.fault_events]
        assert fired
        for outcome in fired:
            # Acceptable set is {"ok"}: every faulted run must fully recover
            # by demoting the poisoned predicate to the interpreter.
            assert outcome.ok
            assert outcome.monitor_stats["predicate_quarantines"] > 0


class TestTrackerAmnesia:
    def test_amnesia_defeats_tracker_guided_relay(self):
        outcomes = _scan(
            "tracker_amnesia", mechanism="relay_fifo", self_heal=False
        )
        _assert_contract("tracker_amnesia", outcomes)
        kinds = {o.kind for _, o in outcomes}
        assert kinds & {"missed_signal", "deadlock", "timeout"}, (
            f"amnesia never bit under relay_fifo; saw {sorted(kinds)}"
        )

    def test_self_heal_demotes_to_exhaustive_relay(self):
        outcomes = _scan(
            "tracker_amnesia", mechanism="relay_fifo", self_heal=True
        )
        _assert_contract("tracker_amnesia", outcomes)
        demoted = [
            o for _, o in outcomes
            if o.monitor_stats.get("incremental_demotions", 0) > 0
        ]
        assert demoted, "no run needed (or performed) the demotion"
        for outcome in demoted:
            assert outcome.ok, (
                f"demotion did not recover the run: {outcome.message}"
            )


class TestMixedPlan:
    def test_mixed_plan_honours_the_union_contract(self):
        outcomes = _scan("mixed")
        _assert_contract("mixed", outcomes)
        assert any(o.fault_events for _, o in outcomes)


class TestChaosSweep:
    def test_sweep_is_clean_under_self_healing(self, tmp_path):
        report = chaos_sweep(
            problems=["bounded_buffer"],
            mechanisms=["autosynch", "relay_fifo"],
            plans=["dropped_signal", "predicate_error", "tracker_amnesia"],
            schedules_per_config=5,
            repro_dir=tmp_path,
        )
        assert isinstance(report, ChaosReport)
        assert report.ok, report.summary()
        assert report.runs == 3 * 2 * 5
        assert report.configs == 6
        assert report.runs_faulted > 0
        assert report.runs_recovered + report.runs_classified == report.runs_faulted
        assert report.recovery_counts.get("faults_injected", 0) > 0
        assert not list(tmp_path.iterdir()), "clean sweep wrote repro files"

    def test_summary_reports_degradation_and_kinds(self):
        report = chaos_sweep(
            problems=["bounded_buffer"],
            mechanisms=["autosynch"],
            plans=["dropped_signal"],
            schedules_per_config=5,
        )
        text = report.summary()
        assert "chaos sweep" in text
        assert "dropped_signal" in text

    def test_contract_violation_is_shrunk_written_and_replayable(self, tmp_path):
        # A deliberately unreasonable fault: drops a signal but accepts
        # nothing short of a perfect run, so the deadlock it causes is a
        # contract violation — exercising the shrink + repro + replay path.
        class StrictDropFault(DroppedSignalFault):
            name = "test_strict_drop"
            description = "dropped signal that tolerates no verdicts"
            acceptable_kinds = frozenset({"ok"})

        register_fault(StrictDropFault)
        plan = FaultPlan(
            "test_strict_plan",
            [FaultSpec("test_strict_drop", {})],
            "strict drop",
        )
        register_fault_plan(plan)
        try:
            report = chaos_sweep(
                problems=["bounded_buffer"],
                mechanisms=["autosynch"],
                plans=["test_strict_plan"],
                schedules_per_config=len(SEED_BAND),
                self_heal=False,
                repro_dir=tmp_path,
            )
            assert not report.ok
            assert report.failures_total > 0
            failure = report.failures[0]
            assert failure.plan == "test_strict_plan"
            assert failure.kind == "deadlock"
            assert failure.repro_path is not None

            payload = json.loads(failure.repro_path.read_text())
            assert payload["mode"] == "chaos"
            assert payload["task"]["fault_plan"]["name"] == "test_strict_plan"
            # self_heal=False is the default, so to_dict omits it.
            assert payload["task"].get("self_heal", False) is False

            # In-process replay (the fault type is registered here):
            # bit-identical — same kind, same trace digest.
            result = replay_repro(failure.repro_path)
            assert result.reproduced, result.describe()
            assert result.outcome.kind == "deadlock"
        finally:
            unregister_fault_plan("test_strict_plan")
            unregister_fault("test_strict_drop")


class TestTaskRoundTrip:
    def test_chaos_fields_survive_the_dict_round_trip(self):
        plan = create_fault_plan("mixed")
        task = ExploreTask(
            problem="bounded_buffer",
            mechanism="autosynch",
            threads=3,
            total_ops=6,
            seed=7,
            fault_plan=plan.to_dict(),
            self_heal=True,
            run_timeout=30.0,
            wait_timeout=500.0,
        )
        data = task.to_dict()
        assert json.loads(json.dumps(data)) == data
        restored = ExploreTask.from_dict(data)
        assert restored == task

    def test_plain_task_dict_omits_chaos_fields(self):
        task = ExploreTask(problem="bounded_buffer", mechanism="autosynch")
        data = task.to_dict()
        for key in ("fault_plan", "self_heal", "run_timeout", "wait_timeout"):
            assert key not in data
        assert ExploreTask.from_dict(data) == task


class TestChaosCLI:
    def test_mode_chaos_runs_clean(self, capsys):
        from repro.explore.__main__ import main

        code = main([
            "--mode", "chaos",
            "--problem", "bounded_buffer",
            "--mechanism", "autosynch",
            "--fault", "dropped_signal",
            "--schedules", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "chaos sweep" in out

    def test_list_faults(self, capsys):
        from repro.explore.__main__ import main

        assert main(["--list-faults"]) == 0
        out = capsys.readouterr().out
        assert "dropped_signal" in out
        assert "mixed" in out

    def test_unknown_fault_plan_is_a_clean_error(self):
        from repro.explore.__main__ import main

        with pytest.raises(SystemExit, match="no_such_plan"):
            main([
                "--mode", "chaos",
                "--problem", "bounded_buffer",
                "--fault", "no_such_plan",
            ])
