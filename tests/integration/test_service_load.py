"""The sustained-load service driver at test scale (fast; no benchmarking).

The real measurements live in ``benchmarks/test_service_throughput.py``;
this suite pins the driver's *correctness* contract at ~50 waiters so the
tier-1 run covers it: conservation of admission slots, the latency-sample
accounting (first ``window`` admissions are stampless), pacing, both
supported scenarios, and the relay-mode comparison harness.
"""

from __future__ import annotations

import pytest

from repro.harness.service_load import (
    ServiceLoadResult,
    measure_relay_modes,
    percentile,
    run_service_load,
)


class TestRunServiceLoad:
    @pytest.mark.parametrize("scenario", ["resource_pool", "fifo_semaphore"])
    def test_small_run_conserves_and_measures(self, scenario):
        result = run_service_load(50, scenario=scenario, window=8)
        assert isinstance(result, ServiceLoadResult)
        assert result.operations == 100  # 50 admissions + 50 releases
        assert result.latency_samples == 42  # first 8 ride the free window
        assert result.duration_seconds > 0
        assert result.ops_per_sec > 0
        assert result.cpu_count >= 1
        assert result.ops_per_sec_per_core == pytest.approx(
            result.ops_per_sec / result.cpu_count
        )
        assert 0 <= result.p50_wakeup_seconds <= result.p99_wakeup_seconds
        assert result.stats["eval_context_allocations"] <= 2

    def test_window_larger_than_waiters(self):
        # Everyone admits immediately: no release is ever waited on.
        result = run_service_load(5, window=64)
        assert result.latency_samples == 0
        assert result.p99_wakeup_seconds == 0.0

    def test_pacing_slows_the_drain(self):
        fast = run_service_load(24, window=4)
        paced = run_service_load(24, window=4, target_rate=100.0)
        # 20 paced releases at 100/s add >= 0.2s of sleep.
        assert paced.duration_seconds > fast.duration_seconds

    def test_mechanism_is_honoured(self):
        result = run_service_load(30, window=4, mechanism="relay_fifo")
        assert result.mechanism == "relay_fifo"
        assert result.operations == 60

    def test_unsupported_scenario_rejected(self):
        with pytest.raises(ValueError, match="resource_pool"):
            run_service_load(10, scenario="barrier")

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            run_service_load(0)
        with pytest.raises(ValueError):
            run_service_load(10, window=0)


class TestMeasureRelayModes:
    def test_incremental_beats_exhaustive(self):
        record = measure_relay_modes(320, passes=5)
        assert record["predicates"] == 20
        assert record["incremental"]["evals_per_pass"] == 1
        assert record["exhaustive"]["evals_per_pass"] == 20
        assert record["eval_ratio"] == 20.0

    def test_single_shard_floor(self):
        record = measure_relay_modes(3, passes=3)
        assert record["predicates"] == 1


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.99) == 0.0

    def test_nearest_rank(self):
        samples = [4.0, 1.0, 3.0, 2.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 4.0
        assert percentile(samples, 0.5) == 3.0  # round(0.5 * 3) == 2 -> ordered[2]
