"""Integration tests for the relay-signalling guarantees (§4.2).

Relay invariance says: whenever some waiting thread's predicate is true,
at least one thread whose predicate is true is active (has been signalled).
Its practical consequences are testable from the outside:

* no waiting thread is ever stranded once its predicate has become true
  (liveness — every workload in these tests terminates);
* AutoSynch wakes only threads whose predicate was true when they were
  signalled, so the number of wasted wake-ups stays far below the baseline's;
* one relay signal is sent per monitor exit at most (never a broadcast).
"""

from __future__ import annotations

import pytest

from repro.core import AutoSynchMonitor
from repro.runtime import SimulationBackend


class Scoreboard(AutoSynchMonitor):
    """Monitor with many distinct waiting conditions over one counter."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.score = 0

    def add(self, amount):
        self.score += amount

    def wait_for(self, threshold):
        self.wait_until("score >= threshold", threshold=threshold)
        return self.score


@pytest.mark.parametrize("signalling", ["autosynch", "autosynch_t"])
def test_every_satisfied_waiter_is_eventually_woken(signalling):
    backend = SimulationBackend(seed=31, policy="random")
    board = Scoreboard(backend=backend, signalling=signalling)
    observed = []

    def waiter(threshold):
        def body():
            observed.append((threshold, board.wait_for(threshold)))
        return body

    def scorer():
        for _ in range(20):
            board.add(1)

    waiters = [waiter(t) for t in range(1, 11)]
    backend.run(waiters + [scorer])
    assert len(observed) == 10
    # Each waiter saw a score at least as large as its threshold.
    assert all(score >= threshold for threshold, score in observed)


@pytest.mark.parametrize("signalling", ["autosynch", "autosynch_t"])
def test_relay_wakes_only_true_predicates(signalling):
    """A woken thread's predicate held when it was signalled, so spurious
    wake-ups can only come from a race with another woken thread — with a
    single waiter per threshold there are none at all."""
    backend = SimulationBackend(seed=5)
    board = Scoreboard(backend=backend, signalling=signalling)

    def waiter(threshold):
        def body():
            board.wait_for(threshold)
        return body

    def scorer():
        for _ in range(5):
            board.add(1)

    backend.run([waiter(t) for t in (1, 2, 3, 4, 5)] + [scorer])
    assert board.stats.spurious_wakeups == 0
    assert board.stats.signal_alls_sent == 0


def test_baseline_wakes_many_threads_for_nothing():
    backend = SimulationBackend(seed=5)
    board = Scoreboard(backend=backend, signalling="baseline")

    def waiter(threshold):
        def body():
            board.wait_for(threshold)
        return body

    def scorer():
        for _ in range(5):
            board.add(1)

    backend.run([waiter(t) for t in (1, 2, 3, 4, 5)] + [scorer])
    assert board.stats.signal_alls_sent > 0
    assert board.stats.spurious_wakeups > 0


def test_relay_signals_at_most_one_thread_per_exit():
    backend = SimulationBackend(seed=17)
    board = Scoreboard(backend=backend, signalling="autosynch")

    def waiter(threshold):
        def body():
            board.wait_for(threshold)
        return body

    def scorer():
        # One large jump makes every waiter's predicate true at once; the
        # relay rule must still wake them one by one, each exit signalling
        # the next.
        board.add(100)

    backend.run([waiter(t) for t in (10, 20, 30, 40)] + [scorer])
    stats = board.stats
    assert stats.signals_sent >= 4
    # Signals are sent one at a time: never more signals than relay calls.
    assert stats.signals_sent <= stats.relay_signal_calls
    assert stats.signal_alls_sent == 0


def test_notified_thread_count_matches_signals_on_simulation():
    backend = SimulationBackend(seed=23)
    board = Scoreboard(backend=backend, signalling="autosynch")

    def waiter(threshold):
        def body():
            board.wait_for(threshold)
        return body

    def scorer():
        for _ in range(6):
            board.add(1)

    backend.run([waiter(t) for t in (2, 4, 6)] + [scorer])
    assert backend.metrics.notified_threads == board.stats.signals_sent
