"""Serial-vs-parallel equivalence of the exploration engine, and the
cached-vs-uncached determinism contract of the TaskRuntime build cache.

The tentpole guarantee (mirror of ``test_parallel_equivalence.py`` for the
experiment harness): ``explore_dfs`` and ``explore_dpor`` produce the same
report — schedules visited, failure kind/digest set, ``complete`` flag,
depth metrics and reduction stats — whatever executor or job count computed
the frontier runs, because every reduction decision is made by the serial
loop in its serial order.  Per-stage ``timings`` are the only report field
allowed to differ (they measure the machine, not the search).

The cache half: a run served from the process-wide :func:`task_runtime`
cache (recycled backend, memoized predicate artifacts) is bit-identical to
a cold run with a fresh :class:`TaskRuntime` — the contract that lets
``explore_swarm``, ``--mode chaos`` and the DFS/DPOR frontier all route
through the cache without changing a single verdict.
"""

from __future__ import annotations

import pytest

from repro.explore.dpor import explore_dpor
from repro.explore.engine import (
    ExploreTask,
    TaskRuntime,
    clear_runtime_cache,
    explore_dfs,
    explore_swarm,
    run_schedule,
    task_runtime,
)
from repro.runtime.simulation import RandomScheduler

CONFIGS = [
    ("bounded_buffer", "autosynch", None),
    ("bounded_buffer", "explicit", 80),
    ("readers_writers", "autosynch", 80),
    ("round_robin", "autosynch", 60),
]


def report_signature(report):
    """Everything a report asserts, minus wall-clock timings."""
    return (
        report.schedules_visited,
        report.complete,
        report.failures_total,
        sorted((f.kind, f.digest, f.prefix) for f in report.failures),
        report.max_trace_steps,
        report.max_decision_depth,
        report.depth_capped,
        dict(report.stats),
    )


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("problem,mechanism,cap", CONFIGS)
    def test_dfs_jobs2_matches_serial(self, problem, mechanism, cap):
        task = ExploreTask(problem=problem, mechanism=mechanism, threads=2, total_ops=2)
        serial = explore_dfs(task, max_schedules=cap)
        parallel = explore_dfs(task, max_schedules=cap, executor="process", jobs=2)
        assert report_signature(serial) == report_signature(parallel)

    @pytest.mark.parametrize("problem,mechanism,cap", CONFIGS)
    def test_dpor_jobs2_matches_serial(self, problem, mechanism, cap):
        task = ExploreTask(problem=problem, mechanism=mechanism, threads=2, total_ops=2)
        serial = explore_dpor(task, max_schedules=cap)
        parallel = explore_dpor(task, max_schedules=cap, executor="process", jobs=2)
        assert report_signature(serial) == report_signature(parallel)

    def test_jobs1_and_jobs4_match(self):
        task = ExploreTask(problem="bounded_buffer", mechanism="autosynch",
                           threads=2, total_ops=2)
        one = explore_dfs(task, executor="process", jobs=1)
        four = explore_dfs(task, executor="process", jobs=4)
        assert report_signature(one) == report_signature(four)
        assert one.complete and four.complete

    def test_parallel_report_carries_timings(self):
        task = ExploreTask(problem="bounded_buffer", mechanism="autosynch",
                           threads=2, total_ops=2)
        report = explore_dfs(task, executor="process", jobs=2)
        assert set(report.timings) >= {"build", "run", "classify", "oracle"}

    def test_unknown_executor_lists_registry(self):
        task = ExploreTask(problem="bounded_buffer", mechanism="autosynch",
                           threads=2, total_ops=2)
        with pytest.raises(ValueError, match="serial"):
            explore_dfs(task, executor="bogus", jobs=2)


class TestCachedVsUncachedRuns:
    def setup_method(self):
        clear_runtime_cache()

    def probe_signature(self, outcome):
        return (outcome.kind, outcome.digest, outcome.trace.choices(),
                outcome.fault_events)

    def test_swarm_probe_digests_match_fresh_runtime(self):
        task = ExploreTask(problem="bounded_buffer", mechanism="autosynch",
                           threads=2, total_ops=3)
        for seed in range(6):
            # Cached: the process-wide runtime (recycled backend after the
            # first probe).  Uncached: a cold TaskRuntime per probe.
            cached = run_schedule(task, RandomScheduler(seed))
            cold = run_schedule(task, RandomScheduler(seed),
                                runtime=TaskRuntime(task))
            assert self.probe_signature(cached) == self.probe_signature(cold)

    def test_chaos_probe_digests_match_fresh_runtime(self):
        # The regression the TaskRuntime routing fixed: chaos probes differ
        # only by seed, so they share one cached runtime — and the recycled
        # backend must reproduce a cold run's trace and fault firings.
        task = ExploreTask(problem="bounded_buffer", mechanism="autosynch",
                           threads=2, total_ops=3,
                           fault_plan="dropped_signal", self_heal=True)
        for seed in range(4):
            seeded = ExploreTask(**{**task.to_dict(), "seed": seed})
            cached = run_schedule(seeded, RandomScheduler(seed))
            cold = run_schedule(seeded, RandomScheduler(seed),
                                runtime=TaskRuntime(seeded))
            assert self.probe_signature(cached) == self.probe_signature(cold)

    def test_probes_share_one_runtime_across_seeds(self):
        task = ExploreTask(problem="bounded_buffer", mechanism="autosynch",
                           threads=2, total_ops=2)
        runtimes = {
            id(task_runtime(ExploreTask(**{**task.to_dict(), "seed": seed})))
            for seed in range(5)
        }
        assert len(runtimes) == 1

    def test_swarm_report_matches_across_executors(self):
        task = ExploreTask(problem="bounded_buffer", mechanism="autosynch",
                           threads=2, total_ops=3)
        serial = explore_swarm(task, schedules=12, base_seed=3)
        sharded = explore_swarm(task, schedules=12, base_seed=3,
                                executor="process", jobs=2)
        assert report_signature(serial) == report_signature(sharded)
