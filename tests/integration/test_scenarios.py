"""Integration tests: declarative scenarios through every front end.

The acceptance bar of the scenario subsystem: a JSON spec checked into the
repository (``scenarios/ping_pong.json``) runs end-to-end with no
problem-specific Python through

* ``run_workload`` under every registered signalling policy,
* the experiments CLI (``--scenario file.json``),
* ``python -m repro.explore`` (DFS with the spec's oracles enforced), and
* fuzz mode (``--mode fuzz``), whose failures ship as replayable repro
  files with the generating spec embedded.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.signalling import available_policies, register_policy, unregister_policy
from repro.explore import ExploreTask, explore_dfs, fuzz_scenarios, replay_repro
from repro.explore.__main__ import main as explore_main
from repro.harness.saturation import run_workload
from repro.problems import get_problem
from repro.runtime import SimulationBackend
from repro.scenarios import (
    ScenarioSpec,
    load_scenario_file,
    register_scenario,
    unregister_scenario,
)
from repro.scenarios.builtin import BUILTIN_SCENARIOS

REPO_ROOT = Path(__file__).resolve().parents[2]
PING_PONG = REPO_ROOT / "scenarios" / "ping_pong.json"


class TestCheckedInSpec:
    def test_spec_file_loads_and_validates(self):
        spec = load_scenario_file(PING_PONG)
        assert spec.name == "ping_pong"
        assert spec.invariants

    def test_runs_under_every_registered_policy(self):
        problem = register_scenario(load_scenario_file(PING_PONG), replace=True)
        try:
            for policy in available_policies():
                result = run_workload(
                    problem,
                    policy,
                    SimulationBackend(seed=11, policy="random"),
                    threads=2,
                    total_ops=12,
                    verify=True,
                    validate=True,
                )
                assert result.operations > 0
        finally:
            unregister_scenario("ping_pong")

    def test_explore_cli_dfs_with_oracles(self, tmp_path, capsys):
        code = explore_main(
            [
                "--scenario", str(PING_PONG),
                "--mechanism", "autosynch",
                "--mode", "dfs",
                "--ops", "6",
                "--out", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ping_pong" in out and "exhaustive" in out
        unregister_scenario("ping_pong")

    def test_experiments_cli_scenario_sweep(self, capsys):
        from repro.experiments.__main__ import main as experiments_main

        code = experiments_main(
            ["--scenario", str(PING_PONG), "--scale", "quick"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario-ping_pong" in out
        # Every automatic mechanism appears as a series column.
        for mechanism in ("baseline", "autosynch", "autosynch_t"):
            assert mechanism in out
        unregister_scenario("ping_pong")


class TestBuiltinScenarios:
    @pytest.mark.parametrize("spec", BUILTIN_SCENARIOS, ids=lambda spec: spec.name)
    def test_registered_and_explorable(self, spec):
        problem = get_problem(spec.name)
        built = problem.build("autosynch", SimulationBackend(), threads=2, total_ops=4)
        assert problem.oracles(built.monitor), "built-in scenarios must declare oracles"

    def test_barrier_dfs_is_clean_and_exhaustive(self):
        report = explore_dfs(
            ExploreTask(problem="barrier", mechanism="autosynch", threads=2, total_ops=4)
        )
        assert report.complete
        assert report.failures_total == 0, report.summary()

    def test_fifo_semaphore_grants_in_ticket_order(self):
        problem = get_problem("fifo_semaphore")
        result = run_workload(
            problem,
            "autosynch",
            SimulationBackend(seed=5, policy="random"),
            threads=4,
            total_ops=40,
            verify=True,
        )
        assert result.operations > 0

    def test_traffic_intersection_matches_example_semantics(self):
        problem = get_problem("traffic_intersection")
        built = problem.build(
            "autosynch", SimulationBackend(seed=3, policy="random"),
            threads=4, total_ops=24,
        )
        built.monitor.backend.run(built.targets, built.names)
        built.verify()
        monitor = built.monitor
        assert sum(monitor.crossings) == monitor.goal
        assert monitor.phases > 0


class TestWorkerSelfContainment:
    def test_run_cells_carry_and_reregister_the_scenario_spec(self):
        # Parallel-executor workers resolve problems by name in their own
        # registry; with the spawn start method they inherit nothing from
        # the parent.  A --scenario sweep's cells therefore embed the spec,
        # and execute_cell re-registers it — proven here by shipping a
        # pickled cell into a fresh interpreter that never saw the parent's
        # registration.
        import pickle
        import subprocess
        import sys

        from repro.experiments.scenario import scenario_experiment
        from repro.harness.execution import enumerate_cells

        experiment = scenario_experiment(load_scenario_file(PING_PONG))
        try:
            cells = enumerate_cells(experiment.quick_config)
            assert all(cell.scenario_json is not None for cell in cells)
            worker = (
                "import pickle, sys\n"
                "from repro.harness.execution import execute_cell\n"
                "cell = pickle.loads(sys.stdin.buffer.read())\n"
                "assert execute_cell(cell).operations > 0\n"
            )
            result = subprocess.run(
                [sys.executable, "-c", worker],
                input=pickle.dumps(cells[0]),
                capture_output=True,
                cwd=str(REPO_ROOT),
                env={"PYTHONPATH": str(REPO_ROOT / "src")},
            )
            assert result.returncode == 0, result.stderr.decode()
        finally:
            unregister_scenario("ping_pong")

    def test_explore_tasks_for_loaded_scenarios_are_self_contained(self):
        from repro.explore.engine import run_schedule
        from repro.runtime.simulation.schedulers import RandomScheduler
        from repro.scenarios import scenario_for

        spec = load_scenario_file(PING_PONG)
        task = ExploreTask(
            problem=spec.name,
            mechanism="autosynch",
            threads=2,
            total_ops=6,
            scenario=spec.to_dict(),
        )
        # Nothing registered under the name: resolve_problem must register
        # from the carried spec (the spawn-worker / replay situation).
        assert scenario_for(spec.name) is None
        try:
            outcome = run_schedule(task, RandomScheduler(3))
            assert outcome.ok, outcome.message
            assert ExploreTask.from_dict(task.to_dict()) == task
        finally:
            unregister_scenario(spec.name)


class TestDeferredPopulation:
    def test_user_scenario_registered_before_first_query_wins_over_builtin(self):
        # The standard catalogue (seven problems + built-in scenarios)
        # populates lazily on the first registry query.  A user scenario
        # registered *before* that query — even under a built-in name like
        # 'barrier' — must survive population, not be silently overwritten.
        # Needs a fresh interpreter: this test process has long since
        # populated its registry.
        import subprocess
        import sys

        script = (
            "from repro.scenarios import register_scenario, ScenarioSpec, ActionSpec, RoleSpec\n"
            "mine = ScenarioSpec(name='barrier', shared={'x': 0},\n"
            "    actions=(ActionSpec(name='tick', effect=(('x', 'x + 1'),)),),\n"
            "    roles=(RoleSpec(name='w', count=1, ops=1, actions=('tick',)),))\n"
            "problem = register_scenario(mine, replace=True)\n"
            "from repro.problems import get_problem\n"
            "assert get_problem('barrier') is problem\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            cwd=str(REPO_ROOT),
            env={"PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert result.returncode == 0, result.stderr


class TestFuzz:
    def test_fuzz_sweep_is_clean_on_the_real_policies(self):
        report = fuzz_scenarios(
            count=3, base_seed=0, schedules=15, mechanisms=("autosynch", "baseline")
        )
        assert report.ok, report.summary()
        assert len(report.results) == 3
        for result in report.results:
            assert result.schedules_visited == 30
            unregister_scenario(result.spec.name)

    def test_fuzz_catches_a_seeded_defect_and_replays(self, tmp_path):
        from tests.integration.test_seeded_defects import LossyRelayPolicy

        register_policy(LossyRelayPolicy)
        try:
            # Seed 1 generates a barrier scenario: the last arriver's exit
            # is the only rescue for the waiting parties, so dropping that
            # one signal must deadlock with a true waiting predicate.
            code = explore_main(
                [
                    "--problem", "barrier",
                    "--mechanism", LossyRelayPolicy.name,
                    "--mode", "dfs",
                    "--threads", "2",
                    "--ops", "2",
                    "--out", str(tmp_path),
                ]
            )
            assert code == 1
            repros = sorted(tmp_path.glob("*.json"))
            assert repros
            payload = json.loads(repros[0].read_text())
            assert payload["failure"]["kind"] == "missed_signal"
            # Scenario-backed repro files embed the generating spec...
            assert payload["scenario"]["name"] == "barrier"
            ScenarioSpec.from_dict(payload["scenario"])
            # ... and replay bit-identically through it.
            result = replay_repro(repros[0])
            assert result.reproduced, result.describe()
        finally:
            unregister_policy(LossyRelayPolicy.name)

    def test_fuzz_writes_failing_spec_files(self, tmp_path):
        from tests.integration.test_seeded_defects import LossyRelayPolicy

        register_policy(LossyRelayPolicy)
        try:
            # Seed 7 generates a one-round barrier: the last arriver's exit
            # is the waiters' only rescue, so the lossy policy's dropped
            # signal is fatal under every schedule.
            report = fuzz_scenarios(
                count=1,
                base_seed=7,
                schedules=40,
                mechanisms=(LossyRelayPolicy.name,),
                spec_dir=tmp_path,
            )
            assert not report.ok
            spec_files = list(tmp_path.glob("*.scenario.json"))
            assert spec_files, "failing scenario spec was not preserved"
            reloaded = load_scenario_file(spec_files[0])
            assert reloaded == report.results[0].spec
        finally:
            unregister_policy(LossyRelayPolicy.name)
            for result in report.results:
                unregister_scenario(result.spec.name)
