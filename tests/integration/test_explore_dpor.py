"""DPOR exploration and the DFS/shrink bugfix sweep.

Covers the invariant the reduction lives or dies by — DPOR must report the
identical violation set as plain DFS on every configuration both can
exhaust — plus the three repairs that rode along: the DFS frontier keying
schedules by prefix (no double execution), the shrinker preserving failure
*identity* rather than bare kind, and the exploration report separating
trace step count from decision depth (with branching at exactly
``max_depth`` included).
"""

from __future__ import annotations

import pytest

from repro.explore import (
    ExploreTask,
    explore_dfs,
    explore_dpor,
    load_repro,
    replay_repro,
    repro_payload,
    shrink_failure,
    write_repro,
)
from repro.explore import engine as engine_module
from repro.explore import shrink as shrink_module
from repro.explore.dpor import DPOR_MODE
from repro.explore.engine import ScheduleOutcome
from repro.problems.base import all_mechanisms
from repro.runtime.simulation.schedulers import SchedulePoint, ScheduleTrace

# Fixture re-use: importing the fixture functions registers them here.
from test_seeded_defects import lossy_policy, unordered_dining  # noqa: F401

BUFFER_2X2 = dict(
    problem="bounded_buffer",
    threads=2,
    total_ops=4,
    problem_params={"capacity": 1},
)


def _outcome_for(points, kind="ok", message="") -> ScheduleOutcome:
    trace = ScheduleTrace(points)
    return ScheduleOutcome(
        status="ok" if kind == "ok" else "failure",
        kind=kind,
        message=message,
        trace=trace,
        backend_metrics={},
    )


class TestDfsFrontierDedup:
    def test_bounded_buffer_2x2_runs_each_schedule_once(self, monkeypatch):
        """Counting regression: every executed prefix is distinct."""
        executed = []
        real = engine_module.run_prefix

        def counting(task, prefix, **kwargs):
            executed.append(tuple(prefix))
            return real(task, prefix, **kwargs)

        monkeypatch.setattr(engine_module, "run_prefix", counting)
        task = ExploreTask(mechanism="autosynch", **BUFFER_2X2)
        report = explore_dfs(task)
        assert report.complete
        assert len(executed) == report.schedules_visited
        assert len(executed) == len(set(executed)), (
            "the DFS frontier executed the same prefix more than once"
        )

    def test_diverging_run_cannot_double_enqueue(self, monkeypatch):
        """A run whose recorded choices ignore its prefix (divergence) used
        to re-enqueue children its siblings had already produced; the
        frontier is now keyed by prefix tuple."""
        # Every run reports the same two-decision trace with two runnable
        # threads at each decision, choices (0, 0) — regardless of prefix.
        points = [
            SchedulePoint(step=0, runnable=(0, 1), chosen=0, reason="start"),
            SchedulePoint(step=1, runnable=(0, 1), chosen=0, reason="yield"),
        ]
        executed = []

        def stubbed(task, prefix, **kwargs):
            executed.append(tuple(prefix))
            return _outcome_for(points, kind="divergence", message="stub")

        monkeypatch.setattr(engine_module, "run_prefix", stubbed)
        task = ExploreTask(mechanism="autosynch", **BUFFER_2X2)
        report = explore_dfs(task, failure_limit=0)
        # Tree over the stub: () branches (1,) and (0, 1); each of those
        # re-branches the same children, which dedup must swallow.
        assert len(executed) == len(set(executed))
        assert sorted(executed) == [(), (0, 1), (1,)]
        assert report.schedules_visited == 3


class TestShrinkPreservesIdentity:
    def test_over_shrink_onto_different_assertion_is_rejected(self, monkeypatch):
        """Dropping the forced decision flips the run onto a *different*
        broken invariant with the same ``postcondition`` kind; the shrinker
        must reject that candidate now that it checks identity."""
        conservation = "put 4 - taken 2 = 2, but count=0"
        drained = "buffer should drain completely"
        point = SchedulePoint(step=0, runnable=(0, 1), chosen=1, reason="start")

        def stubbed(task, prefix, **kwargs):
            if tuple(prefix) == (1,):
                return _outcome_for([point], "postcondition", conservation)
            # Every shrink candidate (the default continuation included)
            # fails too — but with a different assertion.
            return _outcome_for([point], "postcondition", drained)

        monkeypatch.setattr(shrink_module, "run_prefix", stubbed)
        task = ExploreTask(mechanism="autosynch", **BUFFER_2X2)
        result = shrink_failure(task, (1,), "postcondition", message=conservation)
        assert result.prefix == (1,), (
            "the shrinker swapped the repro onto a different assertion"
        )
        assert result.outcome.message == conservation

    def test_kind_only_legacy_callers_still_shrink(self, monkeypatch):
        """Without a message, kind-equality remains the (legacy) criterion."""
        point = SchedulePoint(step=0, runnable=(0, 1), chosen=1, reason="start")

        def stubbed(task, prefix, **kwargs):
            return _outcome_for([point], "deadlock", f"msg for {tuple(prefix)}")

        monkeypatch.setattr(shrink_module, "run_prefix", stubbed)
        task = ExploreTask(mechanism="autosynch", **BUFFER_2X2)
        result = shrink_failure(task, (1,), "deadlock")
        assert result.prefix == ()

    def test_digit_masking_tolerates_counter_drift(self):
        from repro.explore.shrink import failure_identity

        a = failure_identity("postcondition", "expected 4 puts, saw 2")
        b = failure_identity("postcondition", "expected 8 puts, saw 6")
        assert a == b
        c = failure_identity("postcondition", "buffer should drain completely")
        assert a != c
        # Kinds that already carry their identity ignore the message.
        assert failure_identity("missed_signal", "x") == ("missed_signal", None)


class TestDepthReporting:
    def test_trace_steps_and_decision_depth_are_distinct(self):
        task = ExploreTask(
            problem="bounded_buffer",
            mechanism="autosynch",
            threads=1,
            total_ops=2,
            problem_params={"capacity": 1},
        )
        report = explore_dfs(task)
        assert report.complete
        # Forced decisions (one runnable thread) count as steps but not as
        # decision depth, and this tiny workload has plenty of them.
        assert report.max_trace_steps > report.max_decision_depth > 0
        # Back-compat alias.
        assert report.max_depth == report.max_trace_steps

    def test_alternatives_at_exactly_max_depth_are_branched(self):
        task = ExploreTask(mechanism="autosynch", **BUFFER_2X2)
        traces = []
        full = explore_dfs(
            task, progress=lambda n, outcome: traces.append(outcome.trace)
        )
        assert full.complete
        deepest = max(
            index
            for trace in traces
            for index, point in enumerate(trace.points)
            if point.branching > 1
        )
        bounded = explore_dfs(task, max_depth=deepest)
        # The bound equals the deepest real decision: nothing may be lost.
        assert bounded.schedules_visited == full.schedules_visited
        # One decision earlier genuinely prunes.
        assert explore_dfs(task, max_depth=deepest - 1).schedules_visited < (
            full.schedules_visited
        )


class TestDporMatchesDfs:
    @pytest.mark.parametrize("mechanism", all_mechanisms())
    def test_identical_violation_set_on_2x2(self, mechanism):
        max_depth = 24 if mechanism == "baseline" else None
        task = ExploreTask(mechanism=mechanism, **BUFFER_2X2)
        full = explore_dfs(task, max_depth=max_depth)
        reduced = explore_dpor(task, max_depth=max_depth)
        assert full.complete and reduced.complete
        assert reduced.mode == DPOR_MODE
        assert reduced.schedules_visited <= full.schedules_visited
        assert {f.kind for f in reduced.failures} == {
            f.kind for f in full.failures
        }
        assert (reduced.failures_total == 0) == (full.failures_total == 0)

    def test_dpor_refuses_fault_plans(self):
        task = ExploreTask(
            mechanism="autosynch",
            fault_plan={"name": "x", "faults": []},
            **BUFFER_2X2,
        )
        with pytest.raises(ValueError, match="fault injection"):
            explore_dpor(task)


class TestDporFindsSeededDefects:
    def test_lossy_relay_missed_signal_replays_bit_identically(
        self, lossy_policy, tmp_path
    ):
        task = ExploreTask(
            problem="bounded_buffer",
            mechanism=lossy_policy,
            threads=1,
            total_ops=2,
            problem_params={"capacity": 1},
        )
        report = explore_dpor(task)
        assert report.complete
        kinds = {failure.kind for failure in report.failures}
        assert "missed_signal" in kinds

        failure = next(f for f in report.failures if f.kind == "missed_signal")
        result = shrink_failure(
            task, failure.prefix, failure.kind, message=failure.message
        )
        shrunk = failure.__class__(
            kind=failure.kind,
            message=result.outcome.message,
            prefix=result.prefix,
            trace=result.outcome.trace,
            digest=result.outcome.digest,
        )
        payload = repro_payload(task, shrunk, report.mode)
        assert payload["reduced"] is True
        path = write_repro(tmp_path / "lossy_dpor.json", payload)
        replay = replay_repro(load_repro(path))
        assert replay.reproduced, replay.describe()
        assert replay.outcome.kind == "missed_signal"
        assert replay.outcome.digest == shrunk.digest

    def test_unordered_dining_deadlock_replays_bit_identically(
        self, unordered_dining, tmp_path
    ):
        task = ExploreTask(
            problem=unordered_dining,
            mechanism="explicit",
            threads=2,
            total_ops=2,
        )
        full = explore_dfs(task)
        report = explore_dpor(task)
        assert report.complete
        assert {f.kind for f in report.failures} == {"deadlock"}
        assert {f.kind for f in full.failures} == {"deadlock"}
        assert report.schedules_visited <= full.schedules_visited

        failure = report.failures[0]
        result = shrink_failure(
            task, failure.prefix, failure.kind, message=failure.message
        )
        shrunk = failure.__class__(
            kind=failure.kind,
            message=result.outcome.message,
            prefix=result.prefix,
            trace=result.outcome.trace,
            digest=result.outcome.digest,
        )
        path = write_repro(
            tmp_path / "dining_dpor.json",
            repro_payload(task, shrunk, report.mode),
        )
        replay = replay_repro(load_repro(path))
        assert replay.reproduced, replay.describe()
        assert replay.outcome.kind == "deadlock"
        assert replay.outcome.digest == shrunk.digest
