"""Seeded defect: a broken write tracker must be caught as a missed signal.

The incremental relay path's soundness rests entirely on the write tracker
seeing every shared-variable write.  This suite plants a tracker that
*forgets* writes (its ``bump`` does nothing) behind an otherwise-correct
FIFO relay policy: entries evaluated false are marked clean and, since no
write ever dirties them again, are skipped forever.  Schedule exploration
must then find a run where all threads deadlock while a waiter's predicate
is true — the explorer's ``missed_signal`` classification — proving the
equivalence suite's oracle actually has teeth.
"""

from __future__ import annotations

import pytest

from repro.core.signalling import register_policy, unregister_policy
from repro.core.signalling.fifo import FifoRelayPolicy
from repro.core.write_tracking import WriteTracker
from repro.explore import ExploreTask, explore_dfs

BROKEN = "amnesiac_relay_test"


class _AmnesiacTracker(WriteTracker):
    """A write tracker that forgets every write (deliberately unsound)."""

    def bump(self, name: str) -> None:  # noqa: ARG002 - defect by design
        return None


class AmnesiacFifoPolicy(FifoRelayPolicy):
    """FIFO relay whose monitor's write tracker drops every write.

    Predicates evaluated false get marked clean and never re-dirtied, so the
    dirty-set search skips them even after the state change that made them
    true — the exact failure mode the equivalence/validation oracles exist
    to catch.
    """

    name = BROKEN
    description = "fifo relay with a write tracker that drops writes (defect)"

    def _setup(self, monitor) -> None:
        if monitor._write_tracker is not None:
            monitor._write_tracker = _AmnesiacTracker()
        super()._setup(monitor)


@pytest.fixture
def broken_policy():
    register_policy(AmnesiacFifoPolicy)
    try:
        yield BROKEN
    finally:
        unregister_policy(BROKEN)


class TestBrokenTrackerIsCaught:
    def test_dfs_finds_missed_signal(self, broken_policy):
        task = ExploreTask(
            problem="round_robin",
            mechanism=broken_policy,
            threads=2,
            total_ops=4,
        )
        report = explore_dfs(task)
        assert report.complete
        assert report.failures_total > 0, "the dropped write went undetected"
        kinds = {failure.kind for failure in report.failures}
        assert "missed_signal" in kinds, (
            f"expected a missed_signal classification, got {kinds}"
        )

    def test_honest_tracker_passes_same_exploration(self):
        # Control: the same configuration under the real FIFO relay (honest
        # write tracker) has zero failing schedules, so the detection above
        # is the planted defect's.
        task = ExploreTask(
            problem="round_robin",
            mechanism="relay_fifo",
            threads=2,
            total_ops=4,
        )
        report = explore_dfs(task)
        assert report.complete
        assert report.failures_total == 0
