"""Validate-mode invariance sweep: asyncio vs threading, every problem.

The asyncio backend must be a drop-in execution substrate: for every
builtin problem and declarative scenario, a validate-mode run (relay
invariance checked at every step) must complete with the problem's own
invariants verified, produce the same operation count as the threading
backend, and never lose a signal.  Workloads here are sync entry methods —
the asyncio backend bridges them onto threads — so this sweep pins the
backend's lock/condition semantics, not the coroutine driver (which has
its own suite).
"""

from __future__ import annotations

import pytest

from repro.harness.saturation import make_backend, run_workload
from repro.problems.registry import available_problems, get_problem

#: Small but non-trivial sweep: enough threads to force real contention.
THREADS = 4
TOTAL_OPS = 24


def _run(problem_name, backend_name):
    problem = get_problem(problem_name)
    backend = make_backend(backend_name)
    return run_workload(
        problem,
        "autosynch",
        backend,
        threads=THREADS,
        total_ops=TOTAL_OPS,
        verify=True,       # problem invariants / conservation oracles
        validate=True,     # relay-invariance checking at every step
    )


@pytest.mark.parametrize("problem_name", available_problems())
def test_asyncio_matches_threading_in_validate_mode(problem_name):
    """Same verdict on both backends: runs complete, invariants verified,
    identical operation counts (the conserved quantity of the sweep)."""
    threading_result = _run(problem_name, "threading")
    asyncio_result = _run(problem_name, "asyncio")

    assert threading_result.backend == "threading"
    assert asyncio_result.backend == "asyncio"
    assert asyncio_result.operations == threading_result.operations
    # Both backends drove the full workload through the monitor.
    assert asyncio_result.monitor_stats["entries"] > 0
    assert threading_result.monitor_stats["entries"] > 0


@pytest.mark.parametrize("problem_name", ["resource_pool", "fifo_semaphore"])
@pytest.mark.parametrize("mechanism", ["relay_fifo", "baseline"])
def test_service_scenarios_hold_under_other_policies_on_asyncio(
    problem_name, mechanism
):
    """The service-tier scenarios keep their conservation post-conditions on
    the asyncio backend under the FIFO relay and broadcast policies too."""
    result = _run_mechanism(problem_name, mechanism)
    assert result.operations > 0


def _run_mechanism(problem_name, mechanism):
    problem = get_problem(problem_name)
    backend = make_backend("asyncio")
    return run_workload(
        problem,
        mechanism,
        backend,
        threads=THREADS,
        total_ops=TOTAL_OPS,
        verify=True,
        validate=True,
    )
