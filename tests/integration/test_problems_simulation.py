"""Integration tests: every problem under every mechanism on the simulator.

These are the correctness backbone of the reproduction: each of the paper's
seven synchronization problems must terminate and satisfy its own invariants
under all four signalling mechanisms, across scheduling policies and seeds.
"""

from __future__ import annotations

import pytest

from repro.harness.saturation import run_workload
from repro.problems import MECHANISMS, PROBLEMS, get_problem
from repro.runtime import SimulationBackend

# Every registered problem (the paper's seven plus the built-in declarative
# scenarios) under every mechanism it declares; scenario problems have no
# hand-written explicit twin, so their set is the automatic mechanisms.
ALL_COMBINATIONS = [
    (problem_name, mechanism)
    for problem_name in PROBLEMS
    for mechanism in get_problem(problem_name).mechanisms
]


@pytest.mark.parametrize("problem_name, mechanism", ALL_COMBINATIONS)
def test_problem_runs_and_verifies(problem_name, mechanism):
    problem = get_problem(problem_name)
    backend = SimulationBackend(seed=13)
    result = run_workload(
        problem, mechanism, backend, threads=4, total_ops=160, seed=5, verify=True
    )
    assert result.operations > 0
    assert result.backend_metrics["context_switches"] > 0


@pytest.mark.parametrize("problem_name", sorted(PROBLEMS))
def test_problem_is_deterministic_on_the_simulator(problem_name):
    problem = get_problem(problem_name)

    def counts(seed):
        backend = SimulationBackend(seed=seed, policy="random")
        result = run_workload(
            problem, "autosynch", backend, threads=3, total_ops=90, seed=2, verify=True
        )
        return result.backend_metrics, result.monitor_stats

    assert counts(21) == counts(21)


@pytest.mark.parametrize("problem_name", sorted(PROBLEMS))
@pytest.mark.parametrize("seed", [1, 17, 123])
def test_schedule_exploration_with_random_policy(problem_name, seed):
    """Different random schedules must all preserve the problem invariants."""
    problem = get_problem(problem_name)
    backend = SimulationBackend(seed=seed, policy="random")
    run_workload(problem, "autosynch", backend, threads=3, total_ops=90, seed=3, verify=True)


@pytest.mark.parametrize("mechanism", MECHANISMS)
def test_larger_thread_counts_terminate(mechanism):
    """A bigger sweep on the problem that stresses signalling the most."""
    problem = get_problem("parameterized_bounded_buffer")
    backend = SimulationBackend(seed=3)
    result = run_workload(
        problem, mechanism, backend, threads=16, total_ops=320, seed=11, verify=True
    )
    assert result.backend_metrics["context_switches"] > 0


class TestMechanismContracts:
    """Qualitative guarantees the paper states about each mechanism."""

    def run(self, problem_name, mechanism, threads=6, total_ops=240):
        backend = SimulationBackend(seed=8)
        return run_workload(
            get_problem(problem_name), mechanism, backend, threads=threads,
            total_ops=total_ops, seed=4, verify=True,
        )

    @pytest.mark.parametrize("problem_name", sorted(PROBLEMS))
    def test_autosynch_never_uses_signal_all(self, problem_name):
        result = self.run(problem_name, "autosynch")
        assert result.monitor_stats["signal_alls_sent"] == 0
        assert result.backend_metrics["notify_alls"] == 0

    @pytest.mark.parametrize("problem_name", sorted(PROBLEMS))
    def test_autosynch_t_never_uses_signal_all(self, problem_name):
        result = self.run(problem_name, "autosynch_t")
        assert result.monitor_stats["signal_alls_sent"] == 0

    def test_baseline_relies_on_signal_all(self):
        result = self.run("bounded_buffer", "baseline")
        assert result.monitor_stats["signal_alls_sent"] > 0
        assert result.monitor_stats["signals_sent"] == 0

    def test_explicit_parameterized_buffer_needs_signal_all(self):
        result = self.run("parameterized_bounded_buffer", "explicit")
        assert result.monitor_stats["signal_alls_sent"] > 0

    def test_explicit_classic_buffer_does_not_need_signal_all(self):
        result = self.run("bounded_buffer", "explicit")
        assert result.monitor_stats["signal_alls_sent"] == 0

    def test_tagging_reduces_predicate_evaluations_on_round_robin(self):
        with_tags = self.run("round_robin", "autosynch", threads=12, total_ops=360)
        without_tags = self.run("round_robin", "autosynch_t", threads=12, total_ops=360)
        assert (
            with_tags.monitor_stats["predicate_evaluations"]
            < without_tags.monitor_stats["predicate_evaluations"]
        )

    def test_autosynch_wakes_fewer_threads_than_explicit_on_param_buffer(self):
        autosynch = self.run("parameterized_bounded_buffer", "autosynch", threads=12)
        explicit = self.run("parameterized_bounded_buffer", "explicit", threads=12)
        assert (
            autosynch.backend_metrics["notified_threads"]
            <= explicit.backend_metrics["notified_threads"]
        )

    def test_relay_mechanisms_report_relay_calls(self):
        result = self.run("bounded_buffer", "autosynch")
        assert result.monitor_stats["relay_signal_calls"] > 0
