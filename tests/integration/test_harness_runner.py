"""Integration tests for the experiment runner and reporting pipeline."""

from __future__ import annotations

import pytest

from repro.harness import (
    ExperimentRunner,
    FrozenMapping,
    RunConfig,
    format_series_table,
    run_point,
    series_to_rows,
)


def tiny_config(**overrides):
    defaults = dict(
        problem="bounded_buffer",
        thread_counts=(2, 4),
        mechanisms=("explicit", "autosynch"),
        total_ops=80,
        repetitions=2,
        drop_extremes=False,
        backend="simulation",
        seed=3,
    )
    defaults.update(overrides)
    return RunConfig(**defaults)


class TestExperimentRunner:
    def test_run_produces_full_series(self):
        series = ExperimentRunner().run(tiny_config())
        assert set(series.mechanisms()) == {"explicit", "autosynch"}
        assert series.x_values() == [2, 4]
        for mechanism in series.mechanisms():
            for threads in series.x_values():
                point = series.point_for(mechanism, threads)
                assert point is not None
                assert point.repetitions == 2
                assert point.modelled_runtime > 0

    def test_simulation_sweeps_are_reproducible(self):
        first = ExperimentRunner().run(tiny_config())
        second = ExperimentRunner().run(tiny_config())
        for mechanism in first.mechanisms():
            for threads in first.x_values():
                a = first.point_for(mechanism, threads)
                b = second.point_for(mechanism, threads)
                assert a.context_switches == b.context_switches
                assert a.predicate_evaluations == b.predicate_evaluations

    def test_progress_callback_is_invoked(self):
        messages = []
        ExperimentRunner(progress=messages.append).run(tiny_config(thread_counts=(2,)))
        assert any("bounded_buffer" in message for message in messages)

    def test_threading_backend_sweep(self):
        series = ExperimentRunner().run(
            tiny_config(backend="threading", thread_counts=(2,), repetitions=1)
        )
        point = series.point_for("autosynch", 2)
        assert point.wall_time > 0

    def test_problem_params_are_forwarded(self):
        config = tiny_config(problem="bounded_buffer")
        config = RunConfig(
            **{**config.__dict__, "problem_params": {"capacity": 2}}
        )
        series = ExperimentRunner().run(config)
        assert series.point_for("autosynch", 2) is not None

    def test_unknown_problem_is_rejected_with_registered_list(self):
        # Same error style as unknown mechanisms/executors/schedulers: the
        # message names the offender and lists what *is* registered.
        with pytest.raises(ValueError, match="unknown problem 'nonexistent_problem'") as excinfo:
            ExperimentRunner().run(tiny_config(problem="nonexistent_problem"))
        message = str(excinfo.value)
        assert "registered problems" in message
        assert "bounded_buffer" in message

    def test_scaled_config(self):
        config = tiny_config().scaled(total_ops=10, repetitions=1, thread_counts=(2,))
        assert config.total_ops == 10
        assert config.repetitions == 1
        assert config.thread_counts == (2,)
        # The original is unchanged (RunConfig is frozen).
        assert tiny_config().total_ops == 80

    def test_report_rendering_from_series(self):
        series = ExperimentRunner().run(tiny_config(thread_counts=(2,), repetitions=1))
        rows = series_to_rows(series, "context_switches")
        assert len(rows) == 1
        text = format_series_table(series, "modelled_runtime")
        assert "bounded_buffer" in text

    def test_with_executor_override(self):
        config = tiny_config().with_executor("process", jobs=2)
        assert config.executor == "process"
        assert config.jobs == 2
        # None keeps the current values (and returns the same config).
        assert config.with_executor() is config
        assert tiny_config().executor == "serial"
        # jobs defaults to None = "the executor's own default".
        assert tiny_config().jobs is None

    def test_problem_params_are_frozen(self):
        config = tiny_config(problem_params={"capacity": 2})
        assert isinstance(config.problem_params, FrozenMapping)
        with pytest.raises(TypeError):
            config.problem_params["capacity"] = 3

    def test_module_level_run_point_matches_runner(self):
        config = tiny_config(thread_counts=(2,), repetitions=2)
        standalone = run_point("bounded_buffer", config, "autosynch", 2)
        series = ExperimentRunner().run(config)
        in_sweep = series.point_for("autosynch", 2)
        assert standalone.canonical_items(include_timing=False) == in_sweep.canonical_items(
            include_timing=False
        )
