"""Serial-vs-process equivalence of the execution subsystem.

The tentpole guarantee: for the same :class:`RunConfig`, the merged
:class:`ExperimentSeries` is identical no matter which executor ran the
sweep or with how many jobs — same points, same aggregated counters, same
drop-best/drop-worst decisions.  Wall-clock measurements are the only
fields allowed to differ (they measure the machine, not the config).
"""

from __future__ import annotations

import pytest

from repro.harness import ExperimentRunner, RunConfig, series_equal, series_fingerprint
from repro.harness.execution import enumerate_cells


def tiny_config(**overrides):
    defaults = dict(
        problem="bounded_buffer",
        thread_counts=(2, 3),
        mechanisms=("explicit", "autosynch"),
        total_ops=60,
        repetitions=3,
        drop_extremes=True,
        backend="simulation",
        seed=11,
    )
    defaults.update(overrides)
    return RunConfig(**defaults)


class TestSerialProcessEquivalence:
    def test_process_jobs4_matches_serial_bit_for_bit(self):
        serial = ExperimentRunner().run(tiny_config(executor="serial"))
        sharded = ExperimentRunner().run(tiny_config(executor="process", jobs=4))
        assert series_equal(serial, sharded)
        assert series_fingerprint(serial) == series_fingerprint(sharded)

    def test_jobs1_and_jobs4_match(self):
        one = ExperimentRunner().run(tiny_config(executor="process", jobs=1))
        four = ExperimentRunner().run(tiny_config(executor="process", jobs=4))
        assert series_equal(one, four)

    def test_drop_extremes_decisions_survive_sharding(self):
        # 5 repetitions with the drop protocol: the dropped repetitions are
        # chosen by a deterministic rank metric, so sharding cannot change
        # which ones are kept.
        config = tiny_config(repetitions=5, thread_counts=(2,), mechanisms=("autosynch",))
        serial = ExperimentRunner().run(config.with_executor("serial"))
        sharded = ExperimentRunner().run(config.with_executor("process", jobs=3))
        assert series_equal(serial, sharded)
        point = serial.point_for("autosynch", 2)
        assert point.repetitions == 3  # 5 runs, best and worst dropped

    def test_problem_params_cross_process_boundary(self):
        config = tiny_config(
            problem_params={"capacity": 2}, thread_counts=(2,), repetitions=2,
            drop_extremes=False,
        )
        serial = ExperimentRunner().run(config.with_executor("serial"))
        sharded = ExperimentRunner().run(config.with_executor("process", jobs=2))
        assert series_equal(serial, sharded)


class TestSweepOrderIndependence:
    def test_per_cell_seeds_make_points_order_invariant(self):
        # The same (mechanism, threads) point must measure identically no
        # matter where it sits in the sweep — that's what coordinate-derived
        # seeds buy over the legacy config.seed + repetition scheme.
        forward = ExperimentRunner().run(tiny_config(mechanisms=("explicit", "autosynch")))
        backward = ExperimentRunner().run(tiny_config(mechanisms=("autosynch", "explicit")))
        for mechanism in ("explicit", "autosynch"):
            for threads in (2, 3):
                a = forward.point_for(mechanism, threads)
                b = backward.point_for(mechanism, threads)
                assert a.canonical_items(include_timing=False) == b.canonical_items(
                    include_timing=False
                )


class TestOrderedProgress:
    @pytest.mark.parametrize("executor,jobs", [("serial", 1), ("process", 4)])
    def test_progress_lines_are_ordered_and_complete(self, executor, jobs):
        config = tiny_config(executor=executor, jobs=jobs)
        messages = []
        ExperimentRunner(progress=messages.append).run(config)
        cells = enumerate_cells(config)
        assert len(messages) == len(cells)
        # One line per cell, in deterministic cell order — no interleaving,
        # no drops, regardless of worker scheduling.
        for index, (message, cell) in enumerate(zip(messages, cells)):
            assert cell.describe() in message
            assert f"[{index + 1}/{len(cells)}]" in message


class TestValidationOrder:
    def test_unknown_executor_fails_before_any_work(self):
        with pytest.raises(ValueError, match="unknown executor"):
            ExperimentRunner().run(tiny_config(executor="warp"))

    def test_unknown_mechanism_still_fails_fast(self):
        with pytest.raises(ValueError, match="unknown mechanism"):
            ExperimentRunner().run(tiny_config(mechanisms=("explicit", "nope")))
