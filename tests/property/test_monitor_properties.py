"""Property-based tests for whole-monitor behaviour under random schedules.

These run small randomized workloads on the deterministic simulator (random
scheduling policy, hypothesis-chosen seeds and workload shapes) and check the
safety properties that must hold regardless of the schedule or the signalling
mechanism.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.problems.bounded_buffer import AutoBoundedBuffer
from repro.problems.dining_philosophers import AutoDiningTable
from repro.problems.parameterized_bounded_buffer import AutoParameterizedBoundedBuffer
from repro.problems.round_robin import AutoRoundRobin
from repro.runtime import SimulationBackend

MECHANISMS = st.sampled_from(["baseline", "autosynch_t", "autosynch"])

RELAXED = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@RELAXED
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    capacity=st.integers(min_value=1, max_value=5),
    items=st.integers(min_value=1, max_value=40),
    producers=st.integers(min_value=1, max_value=3),
    consumers=st.integers(min_value=1, max_value=3),
    mechanism=MECHANISMS,
)
def test_bounded_buffer_conserves_and_orders_items(
    seed, capacity, items, producers, consumers, mechanism
):
    backend = SimulationBackend(seed=seed, policy="random")
    buffer = AutoBoundedBuffer(capacity, backend=backend, signalling=mechanism)

    # Split the item budget over producers/consumers (remainder to the first).
    def quotas(total, workers):
        base, remainder = divmod(total, workers)
        return [base + (1 if index < remainder else 0) for index in range(workers)]

    produced = []
    consumed = []

    def producer(start, quota):
        def body():
            for offset in range(quota):
                value = (start, offset)
                buffer.put(value)
                produced.append(value)
        return body

    def consumer(quota):
        def body():
            for _ in range(quota):
                consumed.append(buffer.take())
        return body

    targets = [producer(i, q) for i, q in enumerate(quotas(items, producers))]
    targets += [consumer(q) for q in quotas(items, consumers)]
    backend.run(targets)

    assert buffer.count == 0
    assert sorted(consumed) == sorted(produced)
    # Per-producer FIFO: each producer's items are consumed in production order.
    for producer_id in range(producers):
        mine = [value for value in consumed if value[0] == producer_id]
        assert mine == sorted(mine)


@RELAXED
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    threads=st.integers(min_value=2, max_value=6),
    rounds=st.integers(min_value=1, max_value=6),
    mechanism=MECHANISMS,
)
def test_round_robin_order_is_strict(seed, threads, rounds, mechanism):
    backend = SimulationBackend(seed=seed, policy="random")
    monitor = AutoRoundRobin(threads, backend=backend, signalling=mechanism)
    trace = []

    def worker(thread_id):
        def body():
            for _ in range(rounds):
                monitor.access(thread_id)
                trace.append(thread_id)
        return body

    backend.run([worker(i) for i in range(threads)])
    assert monitor.order_violations == 0
    assert trace == [i % threads for i in range(threads * rounds)]


@RELAXED
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    seats=st.integers(min_value=2, max_value=6),
    meals=st.integers(min_value=1, max_value=5),
    mechanism=MECHANISMS,
)
def test_dining_philosophers_never_share_a_chopstick(seed, seats, meals, mechanism):
    backend = SimulationBackend(seed=seed, policy="random")
    table = AutoDiningTable(seats, backend=backend, signalling=mechanism)

    def philosopher(seat):
        def body():
            for _ in range(meals):
                table.pick_up(seat)
                backend.yield_control()  # eat for a while under a random schedule
                table.put_down(seat)
        return body

    backend.run([philosopher(seat) for seat in range(seats)])
    assert table.violations == 0
    assert table.meals == seats * meals
    assert all(stick == 1 for stick in table.chopsticks)


@RELAXED
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    consumers=st.integers(min_value=1, max_value=4),
    requests=st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=6),
    mechanism=MECHANISMS,
)
def test_parameterized_buffer_serves_exact_batches(seed, consumers, requests, mechanism):
    backend = SimulationBackend(seed=seed, policy="random")
    buffer = AutoParameterizedBoundedBuffer(capacity=32, backend=backend, signalling=mechanism)

    per_consumer = [requests[index::consumers] for index in range(consumers)]
    total_items = sum(requests)

    def producer():
        remaining = total_items
        while remaining > 0:
            batch = min(remaining, 8)
            buffer.put(list(range(batch)))
            remaining -= batch

    def consumer(my_requests):
        def body():
            for amount in my_requests:
                taken = buffer.take(amount)
                assert len(taken) == amount
        return body

    backend.run([producer] + [consumer(reqs) for reqs in per_consumer])
    assert buffer.count == 0
    assert buffer.total_put == total_items
    assert buffer.total_taken == total_items
