"""Property test: recorded schedules replay bit-identically.

For any (problem, mechanism, seed), a run recorded under the random
scheduler must be reproducible through the ``replay`` scheduler: same
decision trace, same digest, same backend metrics — twice, because replay
must not consume or perturb anything.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.explore import ExploreTask, run_schedule
from repro.runtime.simulation import RandomScheduler, ReplayScheduler

# Small, fast configurations; the property is about determinism, not scale.
PROBLEMS = ("bounded_buffer", "h2o", "round_robin", "sleeping_barber")
MECHANISMS = ("explicit", "autosynch", "autosynch_t", "baseline")


@settings(max_examples=20, deadline=None)
@given(
    problem=st.sampled_from(PROBLEMS),
    mechanism=st.sampled_from(MECHANISMS),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_replay_is_bit_identical(problem, mechanism, seed):
    task = ExploreTask(
        problem=problem,
        mechanism=mechanism,
        threads=2,
        total_ops=6,
        seed=seed,
    )
    recorded = run_schedule(task, RandomScheduler(seed))

    for _ in range(2):
        replayed = run_schedule(task, ReplayScheduler(recorded.trace))
        assert replayed.kind == recorded.kind
        assert replayed.trace == recorded.trace
        assert replayed.digest == recorded.digest
        assert replayed.backend_metrics == recorded.backend_metrics


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_same_seed_same_schedule(seed):
    task = ExploreTask(
        problem="bounded_buffer", mechanism="autosynch", threads=2, total_ops=6
    )
    first = run_schedule(task, RandomScheduler(seed))
    second = run_schedule(task, RandomScheduler(seed))
    assert first.digest == second.digest
    assert first.backend_metrics == second.backend_metrics
