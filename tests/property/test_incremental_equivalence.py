"""Property: dirty-set relay search is observationally equivalent to exhaustive.

The incremental relay path (write tracking + dirty-set candidate sets +
fused batch closures) is a pure search optimisation: for any (problem,
mechanism, engine, seed) the run under incremental relay must produce the
same outcome kind, the same scheduler decision trace, the same event digest
and the same backend metrics (context switches included) as the run with
the process-wide toggle off.  ``validate=True`` arms the relay-invariance
check on every pass, so an unsound skip would also fail loudly mid-run.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.write_tracking import set_incremental_enabled
from repro.explore import ExploreTask, run_schedule
from repro.runtime.simulation import RandomScheduler

# Small, fast configurations; the property is about equivalence, not scale.
PROBLEMS = ("bounded_buffer", "readers_writers", "round_robin", "h2o")
MECHANISMS = ("autosynch", "autosynch_t", "relay_batched", "relay_fifo")
ENGINES = ("compiled", "interpreted")


def _run(task: ExploreTask, seed: int, incremental: bool):
    previous = set_incremental_enabled(incremental)
    try:
        return run_schedule(task, RandomScheduler(seed))
    finally:
        set_incremental_enabled(previous)


@settings(max_examples=40, deadline=None)
@given(
    problem=st.sampled_from(PROBLEMS),
    mechanism=st.sampled_from(MECHANISMS),
    engine=st.sampled_from(ENGINES),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_incremental_matches_exhaustive(problem, mechanism, engine, seed):
    task = ExploreTask(
        problem=problem,
        mechanism=mechanism,
        threads=2,
        total_ops=6,
        seed=seed,
        eval_engine=engine,
        validate=True,
    )
    incremental = _run(task, seed, incremental=True)
    exhaustive = _run(task, seed, incremental=False)
    assert incremental.kind == exhaustive.kind
    assert incremental.trace == exhaustive.trace
    assert incremental.digest == exhaustive.digest
    assert incremental.backend_metrics == exhaustive.backend_metrics


@settings(max_examples=15, deadline=None)
@given(
    mechanism=st.sampled_from(MECHANISMS),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_incremental_matches_exhaustive_larger_buffer(mechanism, seed):
    """A deeper workload on one problem: more waits per thread means more
    false evaluations, mark-clean transitions and re-dirtying writes."""
    task = ExploreTask(
        problem="bounded_buffer",
        mechanism=mechanism,
        threads=3,
        total_ops=9,
        seed=seed,
        validate=True,
        problem_params={"capacity": 1},
    )
    incremental = _run(task, seed, incremental=True)
    exhaustive = _run(task, seed, incremental=False)
    assert incremental.kind == exhaustive.kind
    assert incremental.trace == exhaustive.trace
    assert incremental.digest == exhaustive.digest
    assert incremental.backend_metrics == exhaustive.backend_metrics
