"""Property: DPOR explores a subset of DFS schedules, same violation set.

For sampled (mechanism, threads, ops, capacity) configurations of the
bounded buffer — and for the seeded lossy-relay defect — the reduced
exploration must

* execute only prefixes plain DFS also executes (reduction never invents
  schedules, so every repro it writes is a plain-DFS repro too), and
* report the identical violation set: same failure kinds, failures on one
  side iff failures on the other.

Together these are the soundness contract of
:func:`repro.explore.dpor.explore_dpor`: pruning may only remove redundant
interleavings, never evidence.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.signalling import register_policy, unregister_policy
from repro.core.signalling.relay import RelayTaggedPolicy
from repro.explore import ExploreTask, explore_dfs, explore_dpor
from repro.explore import dpor as dpor_module
from repro.explore import engine as engine_module
from repro.problems.base import all_mechanisms

LOSSY = "lossy_relay_property_test"


class LossyRelayPolicy(RelayTaggedPolicy):
    """The seeded defect of ``tests/integration/test_seeded_defects.py``:
    a relay that silently drops its first signalling opportunity.
    (Re-declared here — test directories are not importable packages.)"""

    name = LOSSY
    description = "relay that drops the first signalling opportunity (defect)"

    def __init__(self) -> None:
        super().__init__()
        self._dropped = False

    def on_monitor_exit(self) -> None:
        if not self._dropped and self._manager.find_missed_waiter() is not None:
            self._dropped = True
            return
        super().on_monitor_exit()

#: The broadcast baseline's schedule tree is infinite (futile-wakeup
#: cycles); both explorers get the same depth bound so the compared trees
#: coincide.
BASELINE_MAX_DEPTH = 12


def _executed_prefixes(module, runner):
    """Run *runner* with the module's ``run_prefix`` wrapped; return the
    executed prefixes in order."""
    executed = []
    original = module.run_prefix

    def recording(task, prefix, **kwargs):
        executed.append(tuple(prefix))
        return original(task, prefix, **kwargs)

    module.run_prefix = recording
    try:
        report = runner()
    finally:
        module.run_prefix = original
    return report, executed


def _check_equivalence(task):
    max_depth = BASELINE_MAX_DEPTH if task.mechanism == "baseline" else None
    full, dfs_prefixes = _executed_prefixes(
        engine_module, lambda: explore_dfs(task, max_depth=max_depth)
    )
    reduced, dpor_prefixes = _executed_prefixes(
        dpor_module, lambda: explore_dpor(task, max_depth=max_depth)
    )
    assert full.complete and reduced.complete
    assert set(dpor_prefixes) <= set(dfs_prefixes), (
        "DPOR executed a prefix plain DFS never reaches"
    )
    assert reduced.schedules_visited <= full.schedules_visited
    assert {f.kind for f in reduced.failures} == {f.kind for f in full.failures}
    assert (reduced.failures_total == 0) == (full.failures_total == 0)


@settings(max_examples=12, deadline=None)
@given(
    mechanism=st.sampled_from(all_mechanisms()),
    threads=st.sampled_from([1, 2]),
    total_ops=st.sampled_from([2, 4]),
    capacity=st.sampled_from([1, 2]),
)
def test_dpor_subset_and_identical_violations(
    mechanism, threads, total_ops, capacity
):
    _check_equivalence(
        ExploreTask(
            problem="bounded_buffer",
            mechanism=mechanism,
            threads=threads,
            total_ops=total_ops,
            problem_params={"capacity": capacity},
        )
    )


def test_dpor_subset_on_seeded_lossy_defect():
    register_policy(LossyRelayPolicy)
    try:
        _check_equivalence(
            ExploreTask(
                problem="bounded_buffer",
                mechanism=LOSSY,
                threads=1,
                total_ops=2,
                problem_params={"capacity": 1},
            )
        )
    finally:
        unregister_policy(LOSSY)
