"""Property: the compiled engine is observationally identical to the interpreter.

For randomly generated predicates (generators reused from
``test_predicate_properties``) and randomly incomplete environments, the
codegen closure and the tree-walking interpreter must agree on the raw
result value *and*, when evaluation fails, on the raised exception class
(``EvaluationError`` for missing variables, bad indexing and division by
zero — anything else would mean codegen changed the engine contract).
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.predicates import BinOp, Compare, Const, EvaluationError, evaluate
from repro.predicates.codegen import compile_expr
from repro.predicates.evaluator import read_shared

from test_predicate_properties import (
    LOCAL_VARS,
    SHARED_VARS,
    environments,
    operand,
    predicate,
)


@st.composite
def partial_environments(draw):
    """An environment with up to two variables deleted, so missing-variable
    EvaluationErrors are exercised alongside successful evaluations."""
    env = draw(environments())
    missing = draw(
        st.sets(st.sampled_from(SHARED_VARS + LOCAL_VARS), min_size=0, max_size=2)
    )
    state = {name: env[name] for name in SHARED_VARS if name not in missing}
    local_values = {name: env[name] for name in LOCAL_VARS if name not in missing}
    return state, local_values


def arithmetic_comparison():
    """Comparisons over arithmetic terms, including division (so a zero
    divisor hits the division-by-zero wrapping on both engines)."""
    ops = st.sampled_from(("+", "-", "*", "//", "/", "%"))
    term = st.builds(BinOp, ops, operand(), operand())
    side = st.one_of(operand(), term)
    return st.builds(
        Compare, st.sampled_from(("==", "!=", "<", "<=", ">", ">=")), side, side
    )


def _outcome(thunk):
    """(value, None) on success, (None, exception_class) on failure."""
    try:
        return thunk(), None
    except EvaluationError:
        return None, EvaluationError
    except Exception as exc:  # pragma: no cover - engines must agree anyway
        return None, type(exc)


def assert_engines_agree(expr, state, local_values):
    fn = compile_expr(expr)
    assert fn is not None, f"codegen declined a supported expression: {expr!r}"
    interpreted = _outcome(lambda: evaluate(expr, state, local_values))
    compiled = _outcome(lambda: fn(state, read_shared, local_values))
    assert compiled == interpreted, (
        f"engines disagree on {expr!r}: interpreted={interpreted} "
        f"compiled={compiled}"
    )


@given(predicate(), partial_environments())
def test_boolean_predicates_agree(expr, env):
    state, local_values = env
    assert_engines_agree(expr, state, local_values)


@given(arithmetic_comparison(), partial_environments())
def test_arithmetic_predicates_agree(expr, env):
    state, local_values = env
    assert_engines_agree(expr, state, local_values)


@given(environments())
def test_globalized_pipeline_agrees(env):
    """The full monitor pipeline (classify -> globalize -> DNF) produces
    trees whose compiled form matches the interpreter bit for bit."""
    from repro.predicates import compile_predicate

    state = {name: env[name] for name in SHARED_VARS}
    local_values = {name: env[name] for name in LOCAL_VARS}
    compiled = compile_predicate(
        "x + a > y or (x == b and y != a)", set(SHARED_VARS), set(LOCAL_VARS)
    )
    form = compiled.globalized(local_values)
    assert form.compiled_holds(state) == form.holds(state)


def test_division_by_zero_matches():
    expr = Compare("==", BinOp("//", Const(4), Const(0)), Const(1))
    fn = compile_expr(expr)
    assert fn is not None
    interpreted = _outcome(lambda: evaluate(expr, {}, {}))
    compiled = _outcome(lambda: fn({}, read_shared, {}))
    assert interpreted == compiled == (None, EvaluationError)
