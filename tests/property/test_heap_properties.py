"""Property-based tests for the threshold heaps against a reference model."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.heaps import ThresholdHeap

LOWER_OPS = (">", ">=")
UPPER_OPS = ("<", "<=")


def operations(ops):
    """A random sequence of add/discard operations over a small key space."""
    keys = st.integers(min_value=-5, max_value=5)
    entries = st.integers(min_value=0, max_value=9)
    add = st.tuples(st.just("add"), keys, st.sampled_from(ops), entries)
    discard = st.tuples(st.just("discard"), keys, st.sampled_from(ops), entries)
    return st.lists(st.one_of(add, discard), max_size=40)


def _weakest(model, direction):
    """Reference implementation of peek(): weakest live (key, op) pair."""
    live = [(key, op) for (key, op), entries in model.items() if entries]
    if not live:
        return None

    def rank(item):
        key, op = item
        inclusive = 0 if op in (">=", "<=") else 1
        return (key if direction == "min" else -key, inclusive)

    return min(live, key=rank)


def _apply(model, heap, ops_sequence):
    for action, key, op, entry in ops_sequence:
        if action == "add":
            heap.add(key, op, entry)
            model.setdefault((key, op), []).append(entry)
        else:
            heap.discard(key, op, entry)
            bucket = model.get((key, op))
            if bucket and entry in bucket:
                bucket.remove(entry)


@given(operations(LOWER_OPS))
def test_min_heap_peek_matches_reference_model(ops_sequence):
    heap = ThresholdHeap("min")
    model = {}
    _apply(model, heap, ops_sequence)
    expected = _weakest(model, "min")
    node = heap.peek()
    if expected is None:
        assert node is None
    else:
        assert (node.key, node.op) == expected
        assert sorted(node.entries) == sorted(model[expected])


@given(operations(UPPER_OPS))
def test_max_heap_peek_matches_reference_model(ops_sequence):
    heap = ThresholdHeap("max")
    model = {}
    _apply(model, heap, ops_sequence)
    expected = _weakest(model, "max")
    node = heap.peek()
    if expected is None:
        assert node is None
    else:
        assert (node.key, node.op) == expected


@given(operations(LOWER_OPS))
def test_poll_drains_in_weakest_first_order(ops_sequence):
    heap = ThresholdHeap("min")
    model = {}
    _apply(model, heap, ops_sequence)
    drained = []
    while True:
        node = heap.poll()
        if node is None:
            break
        drained.append((node.key, node.op))
    # Polling returns live nodes in non-decreasing weakness order.
    ranks = [(key, 0 if op == ">=" else 1) for key, op in drained]
    assert ranks == sorted(ranks)
    live = {pair for pair, entries in model.items() if entries}
    assert set(drained) == live


@given(operations(LOWER_OPS), st.integers(min_value=-5, max_value=5))
def test_heap_pruning_is_sound(ops_sequence, value):
    """If the weakest bound is not satisfied, no live bound is satisfied."""
    heap = ThresholdHeap("min")
    model = {}
    _apply(model, heap, ops_sequence)
    root = heap.peek()
    if root is None or root.satisfied_by(value):
        return
    for (key, op), entries in model.items():
        if not entries:
            continue
        satisfied = value > key if op == ">" else value >= key
        assert not satisfied
