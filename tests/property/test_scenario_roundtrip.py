"""Property: scenario specs survive the JSON round trip *behaviourally*.

``ScenarioSpec -> JSON -> ScenarioSpec`` must not only reproduce an equal
spec, but a behaviourally identical compiled monitor: for any generated
scenario and any workload seed, the original and the round-tripped problem
must produce the same context-switch, signalling and predicate-evaluation
counts under the same deterministic schedule.  This pins down the whole
chain — serialization, validation, monitor compilation, workload sizing —
not just dataclass equality.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.saturation import run_workload
from repro.runtime import SimulationBackend
from repro.scenarios import ScenarioProblem, ScenarioSpec, generate_scenario


def _counts(problem, run_seed: int):
    result = run_workload(
        problem,
        "autosynch",
        SimulationBackend(seed=run_seed, policy="random"),
        threads=3,
        total_ops=18,
        seed=run_seed,
        verify=True,
        validate=True,
    )
    return result.backend_metrics, result.monitor_stats


@settings(max_examples=25, deadline=None)
@given(spec_seed=st.integers(min_value=0, max_value=10_000), run_seed=st.integers(0, 999))
def test_round_tripped_spec_compiles_to_identical_behaviour(spec_seed, run_seed):
    spec = generate_scenario(spec_seed)
    round_tripped = ScenarioSpec.from_json(spec.to_json())
    assert round_tripped == spec

    original_metrics, original_stats = _counts(ScenarioProblem(spec), run_seed)
    replayed_metrics, replayed_stats = _counts(ScenarioProblem(round_tripped), run_seed)
    assert replayed_metrics == original_metrics
    assert replayed_stats == original_stats


@settings(max_examples=10, deadline=None)
@given(spec_seed=st.integers(min_value=0, max_value=10_000))
def test_builtin_and_generated_specs_round_trip_dicts(spec_seed):
    spec = generate_scenario(spec_seed)
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec
    # to_dict must stay JSON-native (no tuples, no custom objects).
    import json

    json.dumps(spec.to_dict())
