"""Property-based tests for the predicate front end.

The paper's correctness story rests on a chain of semantics-preserving
transformations: DNF conversion, globalization, and the SE-op-LE rewriting
behind tags.  Each property here checks one link of that chain on randomly
generated predicates and states.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.predicates import (
    And,
    BoolConst,
    Compare,
    Const,
    Expr,
    Name,
    Not,
    Or,
    Scope,
    classify,
    evaluate,
    globalize,
    normalize_comparison,
    parse_predicate,
    to_dnf,
    to_nnf,
    unparse,
)

SHARED_VARS = ("x", "y")
LOCAL_VARS = ("a", "b")

# --- strategies -------------------------------------------------------------

small_ints = st.integers(min_value=-10, max_value=10)


def shared_name():
    return st.sampled_from(SHARED_VARS).map(lambda n: Name(n, Scope.SHARED))


def local_name():
    return st.sampled_from(LOCAL_VARS).map(lambda n: Name(n, Scope.LOCAL))


def operand():
    return st.one_of(shared_name(), local_name(), small_ints.map(Const))


def comparison():
    ops = st.sampled_from(("==", "!=", "<", "<=", ">", ">="))
    return st.builds(Compare, ops, operand(), operand())


def predicate(max_depth=3):
    return st.recursive(
        comparison(),
        lambda children: st.one_of(
            st.builds(lambda p: Not(p), children),
            st.builds(lambda p, q: And((p, q)), children, children),
            st.builds(lambda p, q: Or((p, q)), children, children),
        ),
        max_leaves=6,
    )


def environments():
    return st.fixed_dictionaries(
        {name: small_ints for name in SHARED_VARS + LOCAL_VARS}
    )


def _split_env(env):
    state = {name: env[name] for name in SHARED_VARS}
    local_values = {name: env[name] for name in LOCAL_VARS}
    return state, local_values


# --- properties -------------------------------------------------------------


@given(predicate(), environments())
def test_nnf_preserves_semantics(expr, env):
    state, local_values = _split_env(env)
    assert bool(evaluate(expr, state, local_values)) == bool(
        evaluate(to_nnf(expr), state, local_values)
    )


@given(predicate(), environments())
def test_dnf_preserves_semantics(expr, env):
    state, local_values = _split_env(env)
    dnf_expr = to_dnf(expr).to_expr()
    assert bool(evaluate(expr, state, local_values)) == bool(
        evaluate(dnf_expr, state, local_values)
    )


@given(predicate(), environments())
def test_dnf_has_no_internal_disjunction_inside_conjunctions(expr, env):
    dnf = to_dnf(expr)
    for conjunction in dnf:
        for atom in conjunction:
            assert not isinstance(atom, (And, Or))


@given(predicate(), environments())
def test_globalization_preserves_semantics(expr, env):
    state, local_values = _split_env(env)
    shared_form = globalize(expr, local_values)
    # The globalized predicate reads only shared state.
    assert bool(evaluate(expr, state, local_values)) == bool(evaluate(shared_form, state))


@given(predicate(), environments())
def test_globalized_dnf_pipeline_preserves_semantics(expr, env):
    """The full pipeline the monitor uses: globalize then DNF."""
    state, local_values = _split_env(env)
    pipeline_expr = to_dnf(globalize(expr, local_values)).to_expr()
    assert bool(evaluate(expr, state, local_values)) == bool(evaluate(pipeline_expr, state))


@given(predicate())
def test_unparse_parse_round_trip_is_stable(expr):
    text = unparse(expr)
    reparsed = parse_predicate(text)
    assert unparse(reparsed) == text


@given(comparison(), environments())
def test_normalize_comparison_preserves_semantics(atom, env):
    state, local_values = _split_env(env)
    rewritten = normalize_comparison(atom)
    if rewritten is None:
        return
    assert bool(evaluate(atom, state, local_values)) == bool(
        evaluate(rewritten, state, local_values)
    )


@given(comparison())
def test_normalized_left_side_reads_only_shared_state(atom):
    from repro.predicates import scope_of

    rewritten = normalize_comparison(atom)
    if rewritten is None:
        return
    assert scope_of(rewritten.left) is Scope.SHARED
    assert scope_of(rewritten.right) is not Scope.SHARED


@given(
    st.lists(
        st.tuples(st.sampled_from(SHARED_VARS + LOCAL_VARS), small_ints), min_size=1, max_size=4
    ),
    st.sampled_from(("==", "!=", "<", "<=", ">", ">=")),
    environments(),
)
@settings(max_examples=60)
def test_linear_comparisons_always_normalize(terms, op, env):
    """Sums of pure terms on both sides are always separable (step 1)."""
    left_src = " + ".join(f"{name} * {abs(coeff)}" for name, coeff in terms) or "0"
    source = f"{left_src} {op} 3"
    expr = classify(parse_predicate(source), set(SHARED_VARS), set(LOCAL_VARS))
    state, local_values = _split_env(env)
    # Whether or not a tagging rewrite exists, evaluation must succeed and the
    # rewrite (if any) must agree with the original.
    original = bool(evaluate(expr, state, local_values))
    rewritten = normalize_comparison(expr)
    if rewritten is not None:
        assert bool(evaluate(rewritten, state, local_values)) == original


@given(predicate(), environments())
def test_tags_are_sound(expr, env):
    """If every tag of a (globalized) predicate is false, the predicate is false.

    This is the soundness property the condition manager relies on: pruning a
    predicate because its tag is false must never hide a true predicate.
    """
    from repro.predicates import TagKind, analyze_predicate

    state, local_values = _split_env(env)
    shared_form = globalize(expr, local_values)
    dnf = to_dnf(shared_form)
    tags = analyze_predicate(dnf)

    def tag_is_true(tag):
        if tag.kind is TagKind.NONE:
            return True  # None tags prune nothing
        value = evaluate(tag.shared_expr, state)
        if tag.kind is TagKind.EQUIVALENCE:
            return value == tag.key
        return {
            "<": value < tag.key,
            "<=": value <= tag.key,
            ">": value > tag.key,
            ">=": value >= tag.key,
        }[tag.op]

    if not any(tag_is_true(tag) for tag in tags):
        assert not bool(evaluate(shared_form, state))
