"""Property: a chaos repro file replays bit-identically in a fresh process.

The acceptance bar for the fault-injection subsystem: a failure found under
an injected fault, shrunk and written to disk, must reproduce with the
identical classification *and* the identical trace digest when replayed by
``python -m repro.explore --replay`` in a process that shares nothing with
the one that found it.  The fault plan rides inside the repro file, so the
replay re-injects the same faults at the same decision points.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.explore import (
    ExplorationFailure,
    ExploreTask,
    replay_repro,
    repro_payload,
    run_schedule,
    shrink_failure,
    write_repro,
)
from repro.faults import create_fault_plan
from repro.runtime.simulation import RandomScheduler

SEED_BAND = range(20)


def _faulted_task(seed):
    # dropped_signal without self-healing deadlocks on many seeds in the
    # band — a genuine fault-induced failure, found by scan, not hard-coded.
    return ExploreTask(
        problem="bounded_buffer",
        mechanism="autosynch",
        threads=3,
        total_ops=6,
        seed=seed,
        fault_plan=create_fault_plan("dropped_signal").to_dict(),
        self_heal=False,
    )


def _find_fault_induced_failure():
    for seed in SEED_BAND:
        task = _faulted_task(seed)
        outcome = run_schedule(task, RandomScheduler(seed=seed))
        if outcome.kind == "deadlock" and outcome.fault_events:
            return task, outcome
    pytest.fail("no seed in the band produced a fault-induced deadlock")


@pytest.fixture(scope="module")
def chaos_repro(tmp_path_factory):
    """Find, shrink, and persist one fault-induced failure."""
    task, outcome = _find_fault_induced_failure()
    prefix = tuple(outcome.trace.choices())
    shrunk = shrink_failure(task, prefix, outcome.kind)
    failure = ExplorationFailure(
        kind=outcome.kind,
        message=shrunk.outcome.message,
        prefix=shrunk.prefix,
        trace=shrunk.outcome.trace,
        digest=shrunk.outcome.digest,
        seed=task.seed,
    )
    path = tmp_path_factory.mktemp("chaos") / "chaos_repro.json"
    write_repro(path, repro_payload(task, failure, "chaos", len(prefix)))
    return task, failure, path


class TestChaosReplayInProcess:
    def test_shrunk_failure_still_fails_the_same_way(self, chaos_repro):
        task, failure, _ = chaos_repro
        assert failure.kind == "deadlock"
        result = replay_repro(
            json.loads(Path(chaos_repro[2]).read_text())
        )
        assert result.reproduced, result.describe()

    def test_repro_file_embeds_the_fault_plan(self, chaos_repro):
        _, _, path = chaos_repro
        payload = json.loads(path.read_text())
        plan = payload["task"]["fault_plan"]
        assert plan["name"] == "dropped_signal"
        assert plan["faults"][0]["kind"] == "dropped_signal"


class TestChaosReplayFreshProcess:
    def test_cli_replay_reproduces_kind_and_digest(self, chaos_repro):
        _, failure, path = chaos_repro
        completed = subprocess.run(
            [sys.executable, "-m", "repro.explore", "--replay", str(path)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        assert "reproduced" in completed.stdout
        assert "NOT reproduced" not in completed.stdout
        assert failure.kind in completed.stdout
        assert failure.digest[:12] in completed.stdout

    def test_tampered_trace_is_reported_not_reproduced(self, chaos_repro, tmp_path):
        # Mutating the recorded failure kind must flip the verdict: the
        # replay checks what actually happened against the file's claim.
        _, _, path = chaos_repro
        payload = json.loads(path.read_text())
        payload["failure"]["kind"] = "missed_signal"
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(payload))
        completed = subprocess.run(
            [sys.executable, "-m", "repro.explore", "--replay", str(tampered)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 1
        assert "NOT reproduced" in completed.stdout
