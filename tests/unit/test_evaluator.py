"""Unit tests for predicate evaluation against monitor state."""

from __future__ import annotations

import pytest

from repro.predicates import (
    EvaluationError,
    classify,
    evaluate,
    parse_predicate,
)
from repro.predicates.evaluator import evaluate_bool


class Monitor:
    """Stand-in monitor object with fields and a query method."""

    def __init__(self, **fields):
        for name, value in fields.items():
            setattr(self, name, value)
        self.queries = 0

    def has_room(self, extra):
        self.queries += 1
        return len(getattr(self, "items", [])) + extra <= getattr(self, "capacity", 0)


def ev(source, state=None, shared=(), local_values=None, classify_names=True):
    local_values = local_values or {}
    expr = parse_predicate(source)
    if classify_names:
        expr = classify(expr, shared, set(local_values))
    return evaluate(expr, state, local_values)


class TestBasicEvaluation:
    def test_constant(self):
        assert ev("41 + 1") == 42

    def test_shared_name_from_object(self):
        assert ev("count", Monitor(count=5), shared={"count"}) == 5

    def test_shared_name_from_mapping(self):
        assert ev("count", {"count": 9}, shared={"count"}) == 9

    def test_local_name(self):
        assert ev("num * 2", local_values={"num": 21}) == 42

    def test_comparison(self):
        assert ev("count >= num", Monitor(count=50), shared={"count"}, local_values={"num": 48}) is True

    def test_arithmetic_operators(self):
        state = Monitor(a=7, b=2)
        assert ev("a + b", state, shared={"a", "b"}) == 9
        assert ev("a - b", state, shared={"a", "b"}) == 5
        assert ev("a * b", state, shared={"a", "b"}) == 14
        assert ev("a // b", state, shared={"a", "b"}) == 3
        assert ev("a % b", state, shared={"a", "b"}) == 1

    def test_unary_minus(self):
        assert ev("-count", Monitor(count=3), shared={"count"}) == -3

    def test_subscript(self):
        state = Monitor(forks=[1, 0, 1])
        assert ev("forks[2]", state, shared={"forks"}) == 1

    def test_subscript_with_local_index(self):
        state = Monitor(forks=[1, 0, 1])
        assert ev("forks[i]", state, shared={"forks"}, local_values={"i": 1}) == 0

    def test_len_builtin(self):
        assert ev("len(items)", Monitor(items=[1, 2, 3]), shared={"items"}) == 3

    def test_attribute_chain(self):
        class Inner:
            head = 11

        assert ev("self.box.head", Monitor(box=Inner()), shared={"box"}) == 11

    def test_monitor_query_method(self):
        state = Monitor(items=[1], capacity=4)
        assert ev("self.has_room(2)", state) is True
        assert state.queries == 1

    def test_method_call_on_field(self):
        state = Monitor(items=[1, 2])
        assert ev("self.items.count(2)", state) == 1


class TestBooleanEvaluation:
    def test_and_short_circuits(self):
        state = Monitor(items=[], capacity=0, flag=False)
        # If `and` did not short-circuit, has_room would be called.
        assert ev("flag and self.has_room(1)", state, shared={"flag"}) is False
        assert state.queries == 0

    def test_or_short_circuits(self):
        state = Monitor(items=[], capacity=0, flag=True)
        assert ev("flag or self.has_room(1)", state, shared={"flag"}) is True
        assert state.queries == 0

    def test_not(self):
        assert ev("not busy", Monitor(busy=False), shared={"busy"}) is True

    def test_truthiness_of_non_boolean_atoms(self):
        assert evaluate_bool(
            classify(parse_predicate("items"), {"items"}, set()), Monitor(items=[1])
        )
        assert not evaluate_bool(
            classify(parse_predicate("items"), {"items"}, set()), Monitor(items=[])
        )


class TestUnresolvedNames:
    def test_unresolved_name_prefers_locals(self):
        assert ev("num", Monitor(num=1), local_values={"num": 2}, classify_names=False) == 2

    def test_unresolved_name_falls_back_to_state(self):
        assert ev("num", Monitor(num=1), classify_names=False) == 1


class TestEvaluationErrors:
    def test_missing_shared_attribute(self):
        with pytest.raises(EvaluationError):
            ev("count", Monitor(other=1), shared={"count"})

    def test_missing_key_in_mapping(self):
        with pytest.raises(EvaluationError):
            ev("count", {"other": 1}, shared={"count"})

    def test_missing_local(self):
        expr = classify(parse_predicate("num > 1"), set(), {"num"})
        with pytest.raises(EvaluationError):
            evaluate(expr, None, {})

    def test_bad_subscript(self):
        with pytest.raises(EvaluationError):
            ev("forks[10]", Monitor(forks=[1]), shared={"forks"})

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError):
            ev("count // zero", Monitor(count=1, zero=0), shared={"count", "zero"})

    def test_missing_method(self):
        with pytest.raises(EvaluationError):
            ev("self.no_such_method()", Monitor())
