"""Unit tests for the fault-injection subsystem (registries, plans, injector)."""

from __future__ import annotations

import pytest

from repro.faults import (
    DroppedSignalFault,
    Fault,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    available_fault_plans,
    available_faults,
    create_fault,
    create_fault_plan,
    describe_fault,
    describe_fault_plan,
    get_fault,
    get_fault_plan,
    register_fault,
    register_fault_plan,
    unregister_fault,
    unregister_fault_plan,
)
from repro.runtime import SimulationBackend, ThreadingBackend

BUILTIN_FAULTS = (
    "spurious_wakeup",
    "dropped_signal",
    "delayed_signal",
    "thread_crash",
    "predicate_error",
    "tracker_amnesia",
)


class TestFaultRegistry:
    def test_builtin_faults_registered(self):
        names = available_faults()
        for name in BUILTIN_FAULTS:
            assert name in names

    def test_unknown_fault_lists_registered_names(self):
        with pytest.raises(ValueError) as excinfo:
            get_fault("no_such_fault")
        message = str(excinfo.value)
        assert "no_such_fault" in message
        for name in BUILTIN_FAULTS:
            assert name in message

    def test_create_fault_passes_params(self):
        fault = create_fault("dropped_signal", nth=3)
        assert isinstance(fault, DroppedSignalFault)
        assert fault.nth == 3
        assert fault.params == {"nth": 3}

    def test_describe_fault(self):
        assert "notification" in describe_fault("dropped_signal")

    def test_register_and_unregister_custom_fault(self):
        class NopFault(Fault):
            name = "test_nop"
            description = "does nothing"

        register_fault(NopFault)
        try:
            assert get_fault("test_nop") is NopFault
        finally:
            unregister_fault("test_nop")
        with pytest.raises(ValueError):
            get_fault("test_nop")

    def test_acceptable_kinds_never_contain_hang(self):
        for name in available_faults():
            assert "hang" not in get_fault(name).acceptable_kinds


class TestFaultPlans:
    def test_builtin_plans_cover_every_fault_type(self):
        plans = available_fault_plans()
        for name in BUILTIN_FAULTS:
            assert name in plans
        assert "mixed" in plans

    def test_unknown_plan_lists_registered_names(self):
        with pytest.raises(ValueError) as excinfo:
            get_fault_plan("no_such_plan")
        message = str(excinfo.value)
        assert "no_such_plan" in message
        assert "dropped_signal" in message
        assert "mixed" in message

    def test_plan_dict_round_trip(self):
        plan = get_fault_plan("mixed")
        data = plan.to_dict()
        assert FaultPlan.from_dict(data) == plan
        # JSON-serializable: every leaf is a plain type.
        import json

        assert json.loads(json.dumps(data)) == data

    def test_create_fault_plan_resolves_all_forms(self):
        by_name = create_fault_plan("dropped_signal")
        assert create_fault_plan(by_name) is by_name
        from_dict = create_fault_plan(by_name.to_dict())
        assert from_dict == by_name

    def test_create_fault_plan_rejects_other_types(self):
        with pytest.raises(TypeError):
            create_fault_plan(42)

    def test_acceptable_kinds_union_and_ok(self):
        plan = get_fault_plan("mixed")
        expected = set()
        for spec in plan.faults:
            expected |= set(get_fault(spec.kind).acceptable_kinds)
        expected.add("ok")
        expected.discard("hang")
        assert plan.acceptable_kinds == frozenset(expected)
        assert "hang" not in plan.acceptable_kinds

    def test_build_returns_fresh_instances(self):
        plan = get_fault_plan("dropped_signal")
        first = plan.build()
        second = plan.build()
        assert first is not second
        assert first.faults[0] is not second.faults[0]

    def test_register_and_unregister_plan(self):
        plan = FaultPlan(
            "test_plan", [FaultSpec("dropped_signal", {"nth": 2})], "two"
        )
        register_fault_plan(plan)
        try:
            assert get_fault_plan("test_plan") is plan
            assert describe_fault_plan("test_plan") == "two"
        finally:
            unregister_fault_plan("test_plan")

    def test_fault_spec_equality_and_round_trip(self):
        spec = FaultSpec("dropped_signal", {"nth": 2})
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        assert spec != FaultSpec("dropped_signal", {"nth": 3})


class TestFaultInjector:
    def test_attach_rejects_threading_backend(self):
        injector = FaultInjector([create_fault("dropped_signal")])
        with pytest.raises(TypeError, match="simulation backend"):
            injector.attach(ThreadingBackend())

    def test_attach_wires_backend_and_monitor(self):
        backend = SimulationBackend(seed=0)
        injector = FaultInjector([create_fault("dropped_signal")])

        class MonitorStub:
            class stats:
                faults_injected = 0

            _fault_hook = None

        monitor = MonitorStub()
        assert injector.attach(backend, monitor) is injector
        assert monitor._fault_hook is injector
        assert injector.monitor is monitor

    def test_record_counts_events_and_stats(self):
        backend = SimulationBackend(seed=0)
        fault = create_fault("dropped_signal")
        injector = FaultInjector([fault])

        class Stats:
            faults_injected = 0

        class MonitorStub:
            stats = Stats()
            _fault_hook = None

        monitor = MonitorStub()
        injector.attach(backend, monitor)
        injector.record(fault, 7, "something happened")
        assert injector.fired == 1
        assert injector.events == [
            {"fault": "dropped_signal", "step": 7, "detail": "something happened"}
        ]
        assert monitor.stats.faults_injected == 1
