"""Unit tests for the predicate parser (source text -> IR)."""

from __future__ import annotations

import pytest

from repro.predicates import (
    And,
    BinOp,
    BoolConst,
    Call,
    Compare,
    Const,
    Name,
    Not,
    Or,
    PredicateParseError,
    Scope,
    Subscript,
    parse_predicate,
    unparse,
)
from repro.predicates.ast_nodes import Attribute, UnaryOp


class TestBasicParsing:
    def test_bare_name(self):
        expr = parse_predicate("ready")
        assert expr == Name("ready")

    def test_self_attribute_is_shared(self):
        expr = parse_predicate("self.count")
        assert expr == Name("count", Scope.SHARED)

    def test_integer_constant(self):
        assert parse_predicate("42") == Const(42)

    def test_negative_integer_constant_folds(self):
        assert parse_predicate("-3") == Const(-3)

    def test_float_constant(self):
        assert parse_predicate("2.5") == Const(2.5)

    def test_string_constant(self):
        assert parse_predicate("'open'") == Const("open")

    def test_true_false_literals(self):
        assert parse_predicate("True") == BoolConst(True)
        assert parse_predicate("False") == BoolConst(False)

    def test_none_literal(self):
        assert parse_predicate("None") == Const(None)

    def test_tuple_of_constants(self):
        assert parse_predicate("(1, 2, 3)") == Const((1, 2, 3))

    def test_whitespace_is_ignored(self):
        assert parse_predicate("  count  >  0  ") == Compare(">", Name("count"), Const(0))


class TestComparisons:
    @pytest.mark.parametrize(
        "source, op",
        [
            ("x == 1", "=="),
            ("x != 1", "!="),
            ("x < 1", "<"),
            ("x <= 1", "<="),
            ("x > 1", ">"),
            ("x >= 1", ">="),
        ],
    )
    def test_all_comparison_operators(self, source, op):
        expr = parse_predicate(source)
        assert isinstance(expr, Compare)
        assert expr.op == op

    def test_chained_comparison_becomes_conjunction(self):
        expr = parse_predicate("0 < x < n")
        assert isinstance(expr, And)
        assert expr.operands == (
            Compare("<", Const(0), Name("x")),
            Compare("<", Name("x"), Name("n")),
        )

    def test_three_way_chain(self):
        expr = parse_predicate("0 <= i <= j <= n")
        assert isinstance(expr, And)
        assert len(expr.operands) == 3


class TestBooleanStructure:
    def test_and(self):
        expr = parse_predicate("a and b")
        assert expr == And((Name("a"), Name("b")))

    def test_or(self):
        expr = parse_predicate("a or b or c")
        assert expr == Or((Name("a"), Name("b"), Name("c")))

    def test_not(self):
        assert parse_predicate("not busy") == Not(Name("busy"))

    def test_nested_boolean_structure(self):
        expr = parse_predicate("(a and not b) or c")
        assert isinstance(expr, Or)
        assert isinstance(expr.operands[0], And)
        assert isinstance(expr.operands[0].operands[1], Not)


class TestArithmetic:
    @pytest.mark.parametrize(
        "source, op",
        [("a + b", "+"), ("a - b", "-"), ("a * b", "*"), ("a // b", "//"), ("a % b", "%"), ("a / b", "/")],
    )
    def test_binary_operators(self, source, op):
        expr = parse_predicate(source)
        assert isinstance(expr, BinOp)
        assert expr.op == op

    def test_unary_minus_on_name(self):
        expr = parse_predicate("-x")
        assert expr == UnaryOp("-", Name("x"))

    def test_unary_plus_is_dropped(self):
        assert parse_predicate("+x") == Name("x")

    def test_mixed_expression(self):
        expr = parse_predicate("count + len(items) <= capacity")
        assert isinstance(expr, Compare)
        assert isinstance(expr.left, BinOp)
        assert isinstance(expr.left.right, Call)


class TestCallsAndAccess:
    def test_len_call(self):
        expr = parse_predicate("len(items)")
        assert expr == Call("len", (Name("items"),))

    @pytest.mark.parametrize("builtin", ["abs", "min", "max", "sum", "all", "any"])
    def test_whitelisted_builtins(self, builtin):
        expr = parse_predicate(f"{builtin}(values)")
        assert isinstance(expr, Call)
        assert expr.func == builtin

    def test_disallowed_builtin_rejected(self):
        with pytest.raises(PredicateParseError):
            parse_predicate("print(x)")

    def test_monitor_method_call(self):
        expr = parse_predicate("self.is_ready()")
        assert expr == Call("is_ready", (), receiver=None)

    def test_method_call_on_field(self):
        expr = parse_predicate("self.queue.empty()")
        assert isinstance(expr, Call)
        assert expr.func == "empty"
        assert expr.receiver == Name("queue", Scope.SHARED)

    def test_subscript(self):
        expr = parse_predicate("forks[i]")
        assert expr == Subscript(Name("forks"), Name("i"))

    def test_subscript_of_self_field(self):
        expr = parse_predicate("self.forks[i]")
        assert expr == Subscript(Name("forks", Scope.SHARED), Name("i"))

    def test_nested_attribute(self):
        expr = parse_predicate("self.head.next")
        assert expr == Attribute(Name("head", Scope.SHARED), "next")


class TestErrors:
    def test_empty_source(self):
        with pytest.raises(PredicateParseError):
            parse_predicate("   ")

    def test_non_string_source(self):
        with pytest.raises(PredicateParseError):
            parse_predicate(42)  # type: ignore[arg-type]

    def test_syntax_error(self):
        with pytest.raises(PredicateParseError):
            parse_predicate("count >")

    def test_bare_self_rejected(self):
        with pytest.raises(PredicateParseError):
            parse_predicate("self == other")

    def test_lambda_rejected(self):
        with pytest.raises(PredicateParseError):
            parse_predicate("(lambda: True)()")

    def test_keyword_arguments_rejected(self):
        with pytest.raises(PredicateParseError):
            parse_predicate("max(a, key=b)")

    def test_statement_rejected(self):
        with pytest.raises(PredicateParseError):
            parse_predicate("x = 1")

    def test_unsupported_operator_rejected(self):
        with pytest.raises(PredicateParseError):
            parse_predicate("a ** b")

    def test_membership_test_rejected(self):
        with pytest.raises(PredicateParseError):
            parse_predicate("x in items")

    def test_error_message_mentions_source(self):
        with pytest.raises(PredicateParseError) as excinfo:
            parse_predicate("a ** b")
        assert "a ** b" in str(excinfo.value)

    def test_tuple_with_variables_rejected(self):
        with pytest.raises(PredicateParseError):
            parse_predicate("(x, 2)")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "count > 0",
            "count + 1 <= capacity",
            "a and b or not c",
            "x - y == a + b",
            "forks[left] + forks[right] == 2",
            "len(items) < capacity",
            "turn == me",
            "(a or b) and c",
            "x - (y - z) > 0",
        ],
    )
    def test_parse_unparse_parse_is_stable(self, source):
        first = parse_predicate(source)
        text = unparse(first)
        second = parse_predicate(text)
        assert unparse(second) == text
