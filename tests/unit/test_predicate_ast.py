"""Unit tests for the IR node utilities (children, walk, unparse)."""

from __future__ import annotations

import pytest

from repro.predicates import (
    And,
    BinOp,
    BoolConst,
    Call,
    Compare,
    Const,
    Name,
    Not,
    Or,
    Scope,
    Subscript,
    parse_predicate,
    unparse,
    walk,
)
from repro.predicates.ast_nodes import Attribute, UnaryOp, children


class TestChildren:
    def test_leaves_have_no_children(self):
        assert children(Const(1)) == ()
        assert children(BoolConst(True)) == ()
        assert children(Name("x")) == ()

    def test_binop_children(self):
        node = BinOp("+", Name("a"), Name("b"))
        assert children(node) == (Name("a"), Name("b"))

    def test_compare_children(self):
        node = Compare("<", Name("a"), Const(1))
        assert children(node) == (Name("a"), Const(1))

    def test_call_children_include_receiver(self):
        node = Call("empty", (Const(1),), receiver=Name("queue"))
        assert children(node) == (Name("queue"), Const(1))

    def test_call_without_receiver(self):
        node = Call("len", (Name("xs"),))
        assert children(node) == (Name("xs"),)

    def test_boolean_children(self):
        node = And((Name("a"), Name("b"), Name("c")))
        assert children(node) == (Name("a"), Name("b"), Name("c"))

    def test_subscript_children(self):
        node = Subscript(Name("forks"), Const(2))
        assert children(node) == (Name("forks"), Const(2))

    def test_attribute_children(self):
        node = Attribute(Name("head"), "next")
        assert children(node) == (Name("head"),)

    def test_unknown_node_raises(self):
        with pytest.raises(TypeError):
            children("not a node")  # type: ignore[arg-type]


class TestWalk:
    def test_walk_yields_every_node(self):
        expr = parse_predicate("count + 1 > limit and not busy")
        kinds = [type(node).__name__ for node in walk(expr)]
        assert kinds[0] == "And"
        assert "Compare" in kinds
        assert "BinOp" in kinds
        assert "Not" in kinds

    def test_walk_is_preorder(self):
        expr = BinOp("+", Name("a"), Name("b"))
        nodes = list(walk(expr))
        assert nodes[0] is expr
        assert nodes[1] == Name("a")
        assert nodes[2] == Name("b")

    def test_walk_counts(self):
        expr = parse_predicate("a and b and c")
        names = [n for n in walk(expr) if isinstance(n, Name)]
        assert len(names) == 3


class TestStructuralEquality:
    def test_equal_trees_compare_equal(self):
        assert parse_predicate("count >= num") == parse_predicate("count >= num")

    def test_different_trees_compare_unequal(self):
        assert parse_predicate("count >= num") != parse_predicate("count > num")

    def test_nodes_are_hashable(self):
        seen = {parse_predicate("x > 1"), parse_predicate("x > 1"), parse_predicate("x > 2")}
        assert len(seen) == 2

    def test_scope_participates_in_equality(self):
        assert Name("count", Scope.SHARED) != Name("count", Scope.LOCAL)


class TestCompareHelpers:
    @pytest.mark.parametrize(
        "op, negated",
        [("==", "!="), ("!=", "=="), ("<", ">="), ("<=", ">"), (">", "<="), (">=", "<")],
    )
    def test_negate(self, op, negated):
        node = Compare(op, Name("x"), Const(1))
        assert node.negate().op == negated

    @pytest.mark.parametrize(
        "op, flipped",
        [("==", "=="), ("!=", "!="), ("<", ">"), ("<=", ">="), (">", "<"), (">=", "<=")],
    )
    def test_flipped_swaps_sides_and_operator(self, op, flipped):
        node = Compare(op, Name("x"), Const(1))
        result = node.flipped()
        assert result.op == flipped
        assert result.left == Const(1)
        assert result.right == Name("x")

    def test_double_negation_is_identity(self):
        node = Compare("<", Name("x"), Const(1))
        assert node.negate().negate() == node


class TestUnparse:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("count>0", "count > 0"),
            ("a  and   b", "a and b"),
            ("not (a or b)", "not (a or b)"),
            ("(a + b) * c", "(a + b) * c"),
            ("a - (b - c)", "a - (b - c)"),
            ("a - b - c", "a - b - c"),
            ("len(items) < cap", "len(items) < cap"),
            ("self.count >= n", "count >= n"),
            ("forks[i] == 1", "forks[i] == 1"),
            ("queue.head", "queue.head"),
            ("-x < 0", "-x < 0"),
        ],
    )
    def test_canonical_text(self, source, expected):
        assert unparse(parse_predicate(source)) == expected

    def test_unparse_preserves_semantics_of_precedence(self):
        # ``a - (b - c)`` and ``a - b - c`` must stay distinguishable.
        grouped = parse_predicate("a - (b - c)")
        flat = parse_predicate("a - b - c")
        assert unparse(grouped) != unparse(flat)

    def test_unparse_unknown_node_raises(self):
        with pytest.raises(TypeError):
            unparse(object())  # type: ignore[arg-type]

    def test_boolconst_unparse(self):
        assert unparse(BoolConst(True)) == "True"
        assert unparse(BoolConst(False)) == "False"

    def test_method_call_on_receiver(self):
        assert unparse(parse_predicate("self.queue.empty()")) == "queue.empty()"

    def test_monitor_method_call(self):
        assert unparse(parse_predicate("self.is_ready(3)")) == "is_ready(3)"
