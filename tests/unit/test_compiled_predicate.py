"""Unit tests for the compiled-predicate front end used by the monitor."""

from __future__ import annotations

import pytest

from repro.predicates import PredicateError, TagKind, compile_predicate


class State:
    def __init__(self, **fields):
        for name, value in fields.items():
            setattr(self, name, value)


class TestCompilePredicate:
    def test_shared_predicate_classification(self):
        compiled = compile_predicate("count > 0", {"count"})
        assert compiled.is_shared
        assert not compiled.is_complex
        assert compiled.shared_names == frozenset({"count"})
        assert compiled.local_names == frozenset()

    def test_complex_predicate_classification(self):
        compiled = compile_predicate("count >= num", {"count"}, {"num"})
        assert compiled.is_complex
        assert compiled.local_names == frozenset({"num"})

    def test_evaluate_original_form(self):
        compiled = compile_predicate("count >= num", {"count"}, {"num"})
        assert compiled.evaluate(State(count=5), {"num": 5})
        assert not compiled.evaluate(State(count=5), {"num": 6})

    def test_accepts_mappings_for_name_sets(self):
        compiled = compile_predicate("count >= num", {"count": 1}, {"num": 2})
        assert compiled.is_complex


class TestGlobalizedForm:
    def test_globalized_shared_predicate_is_cached(self):
        compiled = compile_predicate("count > 0", {"count"})
        assert compiled.globalized() is compiled.globalized({"anything": 1})

    def test_globalized_complex_predicate_differs_per_locals(self):
        compiled = compile_predicate("count >= num", {"count"}, {"num"})
        g48 = compiled.globalized({"num": 48})
        g32 = compiled.globalized({"num": 32})
        assert g48.canonical == "count >= 48"
        assert g32.canonical == "count >= 32"

    def test_globalized_missing_locals_raise(self):
        compiled = compile_predicate("count >= num", {"count"}, {"num"})
        with pytest.raises(PredicateError):
            compiled.globalized({})

    def test_globalized_holds(self):
        compiled = compile_predicate("count >= num", {"count"}, {"num"})
        form = compiled.globalized({"num": 3})
        assert form.holds(State(count=3))
        assert not form.holds(State(count=2))

    def test_globalized_has_tags(self):
        compiled = compile_predicate("turn == me", {"turn"}, {"me"})
        form = compiled.globalized({"me": 4})
        assert len(form.tags) == 1
        assert form.tags[0].kind is TagKind.EQUIVALENCE
        assert form.tags[0].key == 4

    def test_syntax_equivalent_predicates_share_canonical_form(self):
        # The paper: predicates identical after globalization share a
        # condition variable.  48 written directly or as 40 + 8 is the same.
        direct = compile_predicate("count >= num", {"count"}, {"num"}).globalized({"num": 48})
        computed = compile_predicate("count >= a + b", {"count"}, {"a", "b"}).globalized(
            {"a": 40, "b": 8}
        )
        assert direct.canonical == computed.canonical

    def test_disjunctive_predicate_tags(self):
        compiled = compile_predicate("x >= hi or x == lo", {"x"}, {"hi", "lo"})
        form = compiled.globalized({"hi": 8, "lo": 3})
        kinds = sorted(tag.kind.value for tag in form.tags)
        assert kinds == ["equivalence", "threshold"]

    def test_dnf_is_exposed(self):
        compiled = compile_predicate("a and (b or c)", {"a", "b", "c"})
        form = compiled.globalized()
        assert len(form.dnf) == 2
