"""Unit tests for the condition manager (predicate table, tags, relay signal)."""

from __future__ import annotations

import pytest

from repro.core.condition_manager import ConditionManager
from repro.core.instrumentation import MonitorStats
from repro.predicates import compile_predicate
from repro.runtime import SimulationBackend, ThreadingBackend


class FakeMonitor:
    """Attribute bag standing in for a monitor instance."""

    def __init__(self, **fields):
        for name, value in fields.items():
            setattr(self, name, value)


class _FakeLock:
    def acquire(self):
        return None

    def release(self):
        return None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return None


class _FakeCondition:
    """Condition double that just records notifications."""

    def __init__(self):
        self.notify_calls = 0
        self.notify_all_calls = 0

    def wait(self):  # pragma: no cover - never used in these unit tests
        raise AssertionError("unit tests never block")

    def notify(self):
        self.notify_calls += 1

    def notify_all(self):
        self.notify_all_calls += 1

    def waiter_count(self):
        return 0


class FakeBackend:
    """Minimal backend double for exercising the manager in isolation."""

    name = "fake"

    def create_lock(self):
        return _FakeLock()

    def create_condition(self, lock):
        return _FakeCondition()

    def current_id(self):
        return 0


def make_manager(owner, use_tags=True, inactive_capacity=4, backend=None):
    backend = backend or FakeBackend()
    lock = backend.create_lock()
    stats = MonitorStats()
    manager = ConditionManager(
        owner=owner,
        backend=backend,
        lock=lock,
        stats=stats,
        use_tags=use_tags,
        inactive_capacity=inactive_capacity,
    )
    return manager, stats, lock


def globalized(source, shared, local_values=None):
    local_values = local_values or {}
    compiled = compile_predicate(source, shared, set(local_values))
    return compiled, compiled.globalized(local_values)


class TestRegistration:
    def test_acquire_creates_entry(self):
        manager, stats, _ = make_manager(FakeMonitor(count=0))
        _, form = globalized("count > 0", {"count"})
        entry = manager.acquire_entry(form, from_shared_predicate=True)
        assert entry.canonical == "count > 0"
        assert entry.active
        assert stats.predicate_registrations == 1
        assert len(manager) == 1

    def test_syntax_equivalent_predicates_share_an_entry(self):
        manager, stats, _ = make_manager(FakeMonitor(count=0))
        _, first = globalized("count >= num", {"count"}, {"num": 48})
        _, second = globalized("count >= lower", {"count"}, {"lower": 48})
        entry_a = manager.acquire_entry(first, from_shared_predicate=False)
        entry_b = manager.acquire_entry(second, from_shared_predicate=False)
        assert entry_a is entry_b
        assert stats.predicate_registrations == 1
        assert stats.predicate_reuses == 1

    def test_different_globalizations_get_distinct_entries(self):
        manager, _, _ = make_manager(FakeMonitor(count=0))
        _, first = globalized("count >= num", {"count"}, {"num": 48})
        _, second = globalized("count >= num", {"count"}, {"num": 32})
        assert manager.acquire_entry(first, False) is not manager.acquire_entry(second, False)
        assert len(manager) == 2

    def test_entry_for_lookup(self):
        manager, _, _ = make_manager(FakeMonitor(count=0))
        _, form = globalized("count > 0", {"count"})
        manager.acquire_entry(form, True)
        assert manager.entry_for("count > 0") is not None
        assert manager.entry_for("count > 99") is None


class TestWaiterBookkeeping:
    def test_waiters_and_deactivation(self):
        manager, _, _ = make_manager(FakeMonitor(count=0))
        _, form = globalized("count > 0", {"count"})
        entry = manager.acquire_entry(form, True)
        manager.add_waiter(entry)
        manager.add_waiter(entry)
        assert entry.waiters == 2
        manager.remove_waiter(entry)
        assert entry.active
        manager.remove_waiter(entry)
        assert not entry.active

    def test_waiter_underflow_raises(self):
        from repro.core.errors import MonitorUsageError

        manager, _, _ = make_manager(FakeMonitor(count=0))
        _, form = globalized("count > 0", {"count"})
        entry = manager.acquire_entry(form, True)
        with pytest.raises(MonitorUsageError):
            manager.remove_waiter(entry)

    def test_shared_predicates_stay_in_the_table_when_inactive(self):
        manager, _, _ = make_manager(FakeMonitor(count=0))
        _, form = globalized("count > 0", {"count"})
        entry = manager.acquire_entry(form, from_shared_predicate=True)
        manager.add_waiter(entry)
        manager.remove_waiter(entry)
        assert not entry.active
        assert manager.entry_for("count > 0") is entry

    def test_inactive_complex_predicates_are_evicted_beyond_capacity(self):
        manager, _, _ = make_manager(FakeMonitor(count=0), inactive_capacity=2)
        for value in range(5):
            _, form = globalized("count >= num", {"count"}, {"num": value})
            entry = manager.acquire_entry(form, from_shared_predicate=False)
            manager.add_waiter(entry)
            manager.remove_waiter(entry)
        # Only the two most recently retired complex predicates remain.
        assert len(manager) == 2
        assert manager.entry_for("count >= 4") is not None
        assert manager.entry_for("count >= 3") is not None
        assert manager.entry_for("count >= 0") is None

    def test_reused_inactive_predicate_is_not_evicted(self):
        manager, _, _ = make_manager(FakeMonitor(count=0), inactive_capacity=2)
        _, keep = globalized("count >= num", {"count"}, {"num": 100})
        entry = manager.acquire_entry(keep, False)
        manager.add_waiter(entry)
        manager.remove_waiter(entry)
        # Re-acquire it (a new waiter arrives), then retire others.
        entry = manager.acquire_entry(keep, False)
        manager.add_waiter(entry)
        for value in range(3):
            _, form = globalized("count >= num", {"count"}, {"num": value})
            other = manager.acquire_entry(form, False)
            manager.add_waiter(other)
            manager.remove_waiter(other)
        assert manager.entry_for("count >= 100") is entry
        manager.remove_waiter(entry)


class TestRelaySignalWithTags:
    def test_signals_thread_whose_predicate_is_true(self):
        monitor = FakeMonitor(count=10)
        manager, stats, _ = make_manager(monitor)
        _, form = globalized("count >= num", {"count"}, {"num": 5})
        entry = manager.acquire_entry(form, False)
        manager.add_waiter(entry)
        assert manager.relay_signal() is True
        assert entry.pending_signals == 1
        assert stats.signals_sent == 1

    def test_does_not_signal_false_predicates(self):
        monitor = FakeMonitor(count=1)
        manager, stats, _ = make_manager(monitor)
        _, form = globalized("count >= num", {"count"}, {"num": 5})
        entry = manager.acquire_entry(form, False)
        manager.add_waiter(entry)
        assert manager.relay_signal() is False
        assert stats.signals_sent == 0

    def test_signals_at_most_one_thread(self):
        monitor = FakeMonitor(count=10)
        manager, stats, _ = make_manager(monitor)
        for num in (2, 3):
            _, form = globalized("count >= num", {"count"}, {"num": num})
            entry = manager.acquire_entry(form, False)
            manager.add_waiter(entry)
        assert manager.relay_signal() is True
        assert stats.signals_sent == 1

    def test_does_not_resignal_already_signalled_entry(self):
        monitor = FakeMonitor(count=10)
        manager, stats, _ = make_manager(monitor)
        _, form = globalized("count >= num", {"count"}, {"num": 5})
        entry = manager.acquire_entry(form, False)
        manager.add_waiter(entry)
        assert manager.relay_signal() is True
        # The only waiter has already been promised a signal.
        assert manager.relay_signal() is False
        assert stats.signals_sent == 1

    def test_consume_signal_allows_resignalling(self):
        monitor = FakeMonitor(count=10)
        manager, _, _ = make_manager(monitor)
        _, form = globalized("count >= num", {"count"}, {"num": 5})
        entry = manager.acquire_entry(form, False)
        manager.add_waiter(entry)
        manager.relay_signal()
        manager.consume_signal(entry)
        assert manager.relay_signal() is True

    def test_equivalence_hash_finds_the_right_predicate(self):
        monitor = FakeMonitor(turn=6)
        manager, stats, _ = make_manager(monitor)
        entries = {}
        for me in (3, 6, 8):
            _, form = globalized("turn == me", {"turn"}, {"me": me})
            entry = manager.acquire_entry(form, False)
            manager.add_waiter(entry)
            entries[me] = entry
        assert manager.relay_signal() is True
        assert entries[6].pending_signals == 1
        assert entries[3].pending_signals == 0
        assert entries[8].pending_signals == 0
        # Only the hash-selected predicate was evaluated.
        assert stats.predicate_evaluations == 1

    def test_threshold_heap_prunes_unreachable_predicates(self):
        monitor = FakeMonitor(count=4)
        manager, stats, _ = make_manager(monitor)
        for num in (5, 7, 9):
            _, form = globalized("count >= num", {"count"}, {"num": num})
            entry = manager.acquire_entry(form, False)
            manager.add_waiter(entry)
        assert manager.relay_signal() is False
        # The weakest bound (>= 5) is false, so no predicate body is evaluated.
        assert stats.predicate_evaluations == 0

    def test_threshold_heap_skips_true_tag_with_false_predicate(self):
        # Mirrors the paper's Fig. 4 walk-through: P1: x >= 5 and y != 1,
        # P2: x > 7; with x = 9, y = 1 only P2 can be signalled.
        monitor = FakeMonitor(x=9, y=1)
        manager, _, _ = make_manager(monitor)
        _, p1 = globalized("x >= lo and y != bad", {"x", "y"}, {"lo": 5, "bad": 1})
        _, p2 = globalized("x > hi", {"x"}, {"hi": 7})
        entry1 = manager.acquire_entry(p1, False)
        entry2 = manager.acquire_entry(p2, False)
        manager.add_waiter(entry1)
        manager.add_waiter(entry2)
        assert manager.relay_signal() is True
        assert entry1.pending_signals == 0
        assert entry2.pending_signals == 1

    def test_none_tag_predicates_are_checked_exhaustively(self):
        monitor = FakeMonitor(ready=True)
        manager, stats, _ = make_manager(monitor)
        _, form = globalized("ready", {"ready"})
        entry = manager.acquire_entry(form, True)
        manager.add_waiter(entry)
        assert manager.relay_signal() is True
        assert stats.exhaustive_checks >= 1

    def test_disjunctive_predicate_signalled_via_either_tag(self):
        monitor = FakeMonitor(x=3)
        manager, _, _ = make_manager(monitor)
        _, form = globalized("x >= hi or x == lo", {"x"}, {"hi": 8, "lo": 3})
        entry = manager.acquire_entry(form, False)
        manager.add_waiter(entry)
        assert manager.relay_signal() is True
        assert entry.pending_signals == 1


class TestRelaySignalWithoutTags:
    def test_exhaustive_search_still_finds_true_predicate(self):
        monitor = FakeMonitor(count=10)
        manager, stats, _ = make_manager(monitor, use_tags=False)
        for num in (20, 5, 30):
            _, form = globalized("count >= num", {"count"}, {"num": num})
            entry = manager.acquire_entry(form, False)
            manager.add_waiter(entry)
        assert manager.relay_signal() is True
        # Without tags every active predicate may need to be evaluated.
        assert stats.predicate_evaluations >= 2

    def test_no_tag_structures_are_built(self):
        monitor = FakeMonitor(count=10)
        manager, stats, _ = make_manager(monitor, use_tags=False)
        _, form = globalized("count >= num", {"count"}, {"num": 5})
        entry = manager.acquire_entry(form, False)
        manager.add_waiter(entry)
        assert stats.tag_insertions == 0

    def test_works_on_simulation_backend_conditions(self):
        backend = SimulationBackend()
        monitor = FakeMonitor(count=10)
        manager, _, _ = make_manager(monitor, backend=backend)
        _, form = globalized("count > 0", {"count"})
        entry = manager.acquire_entry(form, True)
        assert entry.condition is not None
