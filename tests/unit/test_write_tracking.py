"""Unit tests for shared-variable write tracking and its monitor gating."""

from __future__ import annotations

import pytest

from repro.core.monitor import AutoSynchMonitor
from repro.core.write_tracking import (
    WriteTracker,
    incremental_enabled,
    set_incremental_enabled,
)
from repro.runtime import SimulationBackend


class Cell(AutoSynchMonitor):
    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.value = 0
        self._hidden = 0


class CustomSetattrCell(Cell):
    """Overriding __setattr__ means writes may bypass the tracking hook."""

    def __setattr__(self, name, value):
        object.__setattr__(self, name, value)


class PreprocessedCell(Cell):
    """Carries the source-to-source preprocessor marker."""

    _autosynch_options = {"from": "preprocessor"}


class TestWriteTracker:
    def test_bump_advances_clock_and_versions(self):
        tracker = WriteTracker()
        assert tracker.version("x") == 0
        tracker.bump("x")
        tracker.bump("y")
        tracker.bump("x")
        assert tracker.clock == 3
        assert tracker.version("x") == 3
        assert tracker.version("y") == 2
        assert tracker.version("z") == 0

    def test_written_since(self):
        tracker = WriteTracker()
        tracker.bump("x")
        mark = tracker.clock
        assert not tracker.written_since(("x",), mark)
        tracker.bump("y")
        assert not tracker.written_since(("x",), mark)
        assert tracker.written_since(("x", "y"), mark)
        # None means "never observed clean": always treated as written.
        assert tracker.written_since(("x",), None)

    def test_drain_returns_and_clears_dirty_names(self):
        tracker = WriteTracker()
        tracker.bump("a")
        tracker.bump("b")
        tracker.bump("a")
        assert tracker.drain() == {"a", "b"}
        assert tracker.drain() == set()
        tracker.bump("c")
        assert tracker.drain() == {"c"}


class TestGlobalToggle:
    def test_set_incremental_enabled_returns_previous(self):
        previous = set_incremental_enabled(False)
        try:
            assert incremental_enabled() is False
            assert set_incremental_enabled(True) is False
            assert incremental_enabled() is True
        finally:
            set_incremental_enabled(previous)

    def test_toggle_off_disables_monitor_tracking(self):
        previous = set_incremental_enabled(False)
        try:
            cell = Cell(backend=SimulationBackend(seed=1))
            assert cell.write_tracker is None
        finally:
            set_incremental_enabled(previous)


class TestMonitorIntegration:
    def test_public_assignments_are_tracked(self):
        cell = Cell(backend=SimulationBackend(seed=1))
        tracker = cell.write_tracker
        assert tracker is not None
        baseline = tracker.version("value")
        cell.value = 7
        assert tracker.version("value") > baseline
        assert cell.stats.tracked_writes >= 1

    def test_private_assignments_are_not_tracked(self):
        cell = Cell(backend=SimulationBackend(seed=1))
        tracker = cell.write_tracker
        clock = tracker.clock
        cell._hidden = 99
        assert tracker.clock == clock

    def test_bump_write_reports_in_place_mutations(self):
        cell = Cell(backend=SimulationBackend(seed=1))
        tracker = cell.write_tracker
        clock = tracker.clock
        cell._bump_write("value")
        assert tracker.version("value") == tracker.clock > clock

    def test_incremental_relay_kwarg_overrides_global(self):
        backend = SimulationBackend(seed=1)
        assert Cell(backend=backend, incremental_relay=False).write_tracker is None
        previous = set_incremental_enabled(False)
        try:
            cell = Cell(backend=SimulationBackend(seed=1), incremental_relay=True)
            assert cell.write_tracker is not None
        finally:
            set_incremental_enabled(previous)

    def test_custom_setattr_disables_tracking(self):
        cell = CustomSetattrCell(backend=SimulationBackend(seed=1))
        assert cell.write_tracker is None

    def test_preprocessor_marker_disables_tracking(self):
        cell = PreprocessedCell(backend=SimulationBackend(seed=1))
        assert cell.write_tracker is None

    def test_interpreted_engine_disables_manager_incremental(self):
        cell = Cell(backend=SimulationBackend(seed=1), eval_engine="interpreted")
        # The monitor may still track writes, but the manager must not use
        # them: the interpreted engine stays a pure exhaustive baseline.
        assert cell.condition_manager.incremental is False

    def test_compiled_engine_manager_is_incremental(self):
        cell = Cell(backend=SimulationBackend(seed=1))
        assert cell.condition_manager.incremental is True

    def test_autosynch_t_policy_opts_out(self):
        cell = Cell(backend=SimulationBackend(seed=1), signalling="autosynch_t")
        assert cell.condition_manager.incremental is False


class TestEngineValidation:
    def test_unknown_engine_lists_valid_engines(self):
        with pytest.raises(ValueError) as excinfo:
            Cell(backend=SimulationBackend(seed=1), eval_engine="copmiled")
        message = str(excinfo.value)
        assert "unknown eval engine 'copmiled'" in message
        assert "compiled" in message and "interpreted" in message

    def test_eval_context_validates_engine(self):
        from repro.predicates import EvalContext

        with pytest.raises(ValueError, match="available engines"):
            EvalContext(object(), engine="jit")
