"""The ``ConditionAPI.notify_n`` bulk-wakeup contract, on every backend.

One call wakes ``min(n, parked)`` waiters in FIFO park order, counts as a
*single* notification event (``notifies`` += 1, ``notified_threads`` +=
actually woken), ``n == 0`` is a complete no-op (no metrics) and ``n < 0``
raises ``ValueError``.  The simulation and asyncio backends are
deterministic, so FIFO order is asserted exactly there; real threads only
get the count-level assertions (the OS may resume notified threads in any
order).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.runtime import AsyncioBackend, SimulationBackend, ThreadingBackend


def _sim_partial_wakeup(n_waiters, notify_count, seed=0):
    """Park waiters in spawn order, notify_n once, time the rest out."""
    backend = SimulationBackend(seed=seed)
    lock = backend.create_lock()
    condition = backend.create_condition(lock)
    parked = []
    outcomes = []

    def waiter(index):
        def body():
            lock.acquire()
            parked.append(index)
            outcomes.append((index, condition.wait(timeout=200)))
            lock.release()

        return body

    def notifier():
        # Under the FIFO scheduler every earlier-spawned waiter has parked
        # by the time this last-spawned thread first runs.
        lock.acquire()
        condition.notify_n(notify_count)
        lock.release()

    backend.run([waiter(index) for index in range(n_waiters)] + [notifier])
    return backend, parked, outcomes


class TestSimulationNotifyN:
    def test_partial_wakeup_is_fifo(self):
        backend, parked, outcomes = _sim_partial_wakeup(5, 2)
        notified = [index for index, ok in outcomes if ok]
        timed_out = [index for index, ok in outcomes if not ok]
        assert sorted(notified) == parked[:2]
        assert sorted(timed_out) == parked[2:]

    def test_single_notification_event_per_batch(self):
        backend, _, _ = _sim_partial_wakeup(5, 3)
        metrics = backend.metrics.snapshot()
        assert metrics["notifies"] == 1
        assert metrics["notified_threads"] == 3
        assert metrics["notify_alls"] == 0

    def test_overcount_wakes_everyone_once(self):
        backend, parked, outcomes = _sim_partial_wakeup(3, 50)
        assert [ok for _, ok in outcomes] == [True, True, True]
        assert backend.metrics.snapshot()["notified_threads"] == 3

    def test_zero_is_a_complete_no_op(self):
        backend = SimulationBackend(seed=0)
        lock = backend.create_lock()
        condition = backend.create_condition(lock)

        def body():
            lock.acquire()
            condition.notify_n(0)
            lock.release()

        backend.run([body])
        assert backend.metrics.snapshot()["notifies"] == 0

    def test_negative_raises(self):
        backend = SimulationBackend(seed=0)
        lock = backend.create_lock()
        condition = backend.create_condition(lock)
        with pytest.raises(ValueError):
            condition.notify_n(-1)


class TestThreadingNotifyN:
    def test_partial_wakeup_counts(self):
        backend = ThreadingBackend()
        lock = backend.create_lock()
        condition = backend.create_condition(lock)
        outcomes = []

        def waiter():
            lock.acquire()
            outcomes.append(condition.wait(timeout=2.0))
            lock.release()

        def notifier():
            while True:
                lock.acquire()
                if condition.waiter_count() == 4:
                    break
                lock.release()
            condition.notify_n(2)
            lock.release()

        backend.run([waiter] * 4 + [notifier])
        assert sorted(outcomes) == [False, False, True, True]
        metrics = backend.metrics.snapshot()
        assert metrics["notifies"] == 1
        assert metrics["notified_threads"] == 2

    def test_zero_waiters_counts_nothing_woken(self):
        backend = ThreadingBackend()
        lock = backend.create_lock()
        condition = backend.create_condition(lock)
        with lock:
            condition.notify_n(3)
        metrics = backend.metrics.snapshot()
        assert metrics["notifies"] == 1
        assert metrics["notified_threads"] == 0

    def test_zero_is_a_complete_no_op(self):
        backend = ThreadingBackend()
        lock = backend.create_lock()
        condition = backend.create_condition(lock)
        with lock:
            condition.notify_n(0)
        assert backend.metrics.snapshot()["notifies"] == 0

    def test_negative_raises(self):
        backend = ThreadingBackend()
        lock = backend.create_lock()
        condition = backend.create_condition(lock)
        with pytest.raises(ValueError):
            condition.notify_n(-2)


class TestAsyncioNotifyN:
    def _run_partial(self, n_waiters, notify_count):
        backend = AsyncioBackend()
        lock = backend.create_lock()
        condition = backend.create_condition(lock)
        parked = []
        outcomes = []

        def waiter(index):
            async def body():
                await lock.acquire_async()
                parked.append(index)
                outcomes.append((index, await condition.wait_async(timeout=2.0)))
                lock.release()

            return body

        async def notifier():
            while condition.waiter_count() < n_waiters:
                await asyncio.sleep(0)
            await lock.acquire_async()
            condition.notify_n(notify_count)
            lock.release()

        backend.run([waiter(index) for index in range(n_waiters)] + [notifier])
        return backend, parked, outcomes

    def test_partial_wakeup_is_fifo(self):
        backend, parked, outcomes = self._run_partial(5, 2)
        notified = [index for index, ok in outcomes if ok]
        timed_out = [index for index, ok in outcomes if not ok]
        assert sorted(notified) == parked[:2]
        assert sorted(timed_out) == parked[2:]

    def test_single_notification_event_per_batch(self):
        backend, _, _ = self._run_partial(5, 3)
        metrics = backend.metrics.snapshot()
        assert metrics["notifies"] == 1
        assert metrics["notified_threads"] == 3

    def test_overcount_wakes_everyone_once(self):
        backend, _, outcomes = self._run_partial(3, 99)
        assert [ok for _, ok in outcomes] == [True, True, True]
        assert backend.metrics.snapshot()["notified_threads"] == 3

    def test_zero_is_a_complete_no_op(self):
        backend = AsyncioBackend()
        lock = backend.create_lock()
        condition = backend.create_condition(lock)
        lock.acquire()
        condition.notify_n(0)
        lock.release()
        assert backend.metrics.snapshot()["notifies"] == 0

    def test_negative_raises(self):
        backend = AsyncioBackend()
        lock = backend.create_lock()
        condition = backend.create_condition(lock)
        with pytest.raises(ValueError):
            condition.notify_n(-1)


class TestDefaultLoopImplementation:
    """A ConditionAPI subclass that only implements notify() still gets a
    correct (if unbatched) notify_n through the base-class loop."""

    def test_loops_notify(self):
        calls = []

        from repro.runtime.api import ConditionAPI

        class Plain(ConditionAPI):
            def wait(self, timeout=None):  # pragma: no cover - never parked
                raise AssertionError

            def notify(self):
                calls.append("notify")

            def notify_all(self):  # pragma: no cover
                raise AssertionError

            def waiter_count(self):
                return 0

        condition = Plain()
        condition.notify_n(3)
        assert calls == ["notify"] * 3
        condition.notify_n(0)
        assert calls == ["notify"] * 3
        with pytest.raises(ValueError):
            condition.notify_n(-5)
