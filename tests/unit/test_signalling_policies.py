"""Unit tests for the pluggable signalling-policy subsystem."""

from __future__ import annotations

import pytest

from repro.core import AutoSynchMonitor
from repro.core.condition_manager import ConditionManager
from repro.core.errors import MonitorUsageError
from repro.core.instrumentation import MonitorStats
from repro.core.signalling import (
    BatchedRelayPolicy,
    BroadcastPolicy,
    FifoRelayPolicy,
    RelayExhaustivePolicy,
    RelayPolicyBase,
    RelayTaggedPolicy,
    SignallingPolicy,
    available_policies,
    create_policy,
    describe_policy,
    get_policy,
    register_policy,
    unregister_policy,
)
from repro.predicates import compile_predicate
from repro.runtime import SimulationBackend

EXPECTED_POLICIES = (
    "autosynch",
    "autosynch_t",
    "baseline",
    "relay_batched",
    "relay_fifo",
)


class Cell(AutoSynchMonitor):
    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.value = None

    def put(self, value):
        self.wait_until("value is None")
        self.value = value

    def take(self):
        self.wait_until("value is not None")
        value = self.value
        self.value = None
        return value


class Scoreboard(AutoSynchMonitor):
    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.score = 0

    def add(self, amount):
        self.score += amount

    def wait_for(self, threshold):
        self.wait_until("score >= threshold", threshold=threshold)
        return self.score


class TestRegistry:
    def test_all_builtin_policies_are_registered(self):
        names = available_policies()
        assert len(names) >= 5
        for expected in EXPECTED_POLICIES:
            assert expected in names

    def test_legacy_names_resolve_to_the_extracted_policies(self):
        assert get_policy("autosynch") is RelayTaggedPolicy
        assert get_policy("autosynch_t") is RelayExhaustivePolicy
        assert get_policy("baseline") is BroadcastPolicy
        assert get_policy("relay_batched") is BatchedRelayPolicy
        assert get_policy("relay_fifo") is FifoRelayPolicy

    def test_unknown_name_raises_value_error_listing_policies(self):
        with pytest.raises(ValueError) as excinfo:
            get_policy("telepathy")
        assert "autosynch" in str(excinfo.value)

    def test_describe_policy_is_nonempty_for_every_registration(self):
        for name in available_policies():
            assert describe_policy(name).strip()

    def test_describe_policy_handles_constructors_with_required_args(self):
        class Tuned(RelayPolicyBase):
            name = "relay_tuned_test"
            description = "relay with a mandatory tuning knob (test only)"

            def __init__(self, knob):
                super().__init__()
                self.knob = knob

        register_policy(Tuned)
        try:
            assert describe_policy("relay_tuned_test") == Tuned.description
        finally:
            unregister_policy("relay_tuned_test")

    def test_duplicate_registration_is_rejected(self):
        class Impostor(BroadcastPolicy):
            name = "baseline"

        with pytest.raises(ValueError):
            register_policy(Impostor)
        # ... unless explicitly replacing; restore the original afterwards.
        register_policy(Impostor, replace=True)
        try:
            assert get_policy("baseline") is Impostor
        finally:
            register_policy(BroadcastPolicy, replace=True)

    def test_register_rejects_non_policy_and_unnamed_classes(self):
        with pytest.raises(TypeError):
            register_policy(object)

        class Nameless(RelayPolicyBase):
            pass

        with pytest.raises(ValueError):
            register_policy(Nameless)

    def test_create_policy_accepts_name_class_and_instance(self):
        assert isinstance(create_policy("relay_fifo"), FifoRelayPolicy)
        assert isinstance(create_policy(BatchedRelayPolicy), BatchedRelayPolicy)
        configured = BatchedRelayPolicy(batch_limit=9)
        assert create_policy(configured) is configured
        with pytest.raises(TypeError):
            create_policy(42)


class TestMonitorIntegration:
    @pytest.mark.parametrize("name", EXPECTED_POLICIES)
    def test_monitor_accepts_every_registered_name(self, name):
        cell = Cell(signalling=name)
        assert cell.signalling == name
        cell.put(1)
        assert cell.take() == 1

    def test_monitor_accepts_policy_class_and_instance(self):
        assert Cell(signalling=FifoRelayPolicy).signalling == "relay_fifo"
        cell = Cell(signalling=BatchedRelayPolicy(batch_limit=2))
        assert cell.signalling == "relay_batched"
        assert cell.signalling_policy.batch_limit == 2

    def test_policy_instances_cannot_be_shared_between_monitors(self):
        policy = BatchedRelayPolicy()
        Cell(signalling=policy)
        with pytest.raises(MonitorUsageError):
            Cell(signalling=policy)

    def test_unbound_policy_has_no_monitor(self):
        with pytest.raises(MonitorUsageError):
            BatchedRelayPolicy().monitor

    def test_invalid_signalling_still_raises_value_error(self):
        with pytest.raises(ValueError):
            Cell(signalling="telepathy")

    def test_condition_manager_exposed_per_policy(self):
        assert Cell(signalling="relay_batched").condition_manager is not None
        assert Cell(signalling="relay_fifo").condition_manager is not None
        assert Cell(signalling="baseline").condition_manager is None

    def test_tag_usage_follows_the_policy(self):
        assert Cell(signalling="autosynch").condition_manager.use_tags
        assert Cell(signalling="relay_batched").condition_manager.use_tags
        assert not Cell(signalling="autosynch_t").condition_manager.use_tags
        assert not Cell(signalling="relay_fifo").condition_manager.use_tags

    @pytest.mark.parametrize("name", ["relay_batched", "relay_fifo"])
    def test_new_policies_run_a_blocking_workload(self, name):
        backend = SimulationBackend(seed=11)
        cell = Cell(backend=backend, signalling=name)
        taken = []

        def consumer():
            for _ in range(10):
                taken.append(cell.take())

        def producer():
            for value in range(10):
                cell.put(value)

        backend.run([consumer, producer], ["consumer", "producer"])
        assert taken == list(range(10))
        assert cell.stats.waits > 0
        assert cell.stats.signal_alls_sent == 0


class TestBatchedRelay:
    def test_batch_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            BatchedRelayPolicy(batch_limit=0)

    def test_one_exit_wakes_a_whole_batch(self):
        from repro.core.trace import Tracer

        backend = SimulationBackend(seed=7)
        tracer = Tracer()
        board = Scoreboard(
            backend=backend,
            signalling=BatchedRelayPolicy(batch_limit=8),
            tracer=tracer,
        )
        woken = []

        def waiter(threshold):
            def body():
                woken.append((threshold, board.wait_for(threshold)))
            return body

        def scorer():
            board.add(100)  # satisfies every waiter at once

        backend.run([waiter(t) for t in (10, 20, 30, 40)] + [scorer])
        assert sorted(t for t, _ in woken) == [10, 20, 30, 40]
        # Every woken thread was genuinely ready (all four predicates held
        # when the batch was signalled), so batching added no noise ...
        assert board.stats.spurious_wakeups == 0
        # ... and one single relay search delivered the whole batch, where
        # the per-wait relay would have chained four searches.
        relay_details = [e.detail for e in tracer.events if e.kind == "relay"]
        assert "signalled 4" in relay_details

    def test_batched_relay_signals_at_most_k_per_search(self):
        backend = SimulationBackend(seed=3)
        board = Scoreboard(backend=backend, signalling=BatchedRelayPolicy(batch_limit=2))

        def waiter(threshold):
            def body():
                board.wait_for(threshold)
            return body

        def scorer():
            board.add(100)

        backend.run([waiter(t) for t in (1, 2, 3, 4, 5)] + [scorer])
        assert board.stats.signals_sent >= 5


class TestConditionManagerPrimitives:
    class FakeMonitor:
        def __init__(self, **fields):
            for name, value in fields.items():
                setattr(self, name, value)

    class _FakeLock:
        def acquire(self):
            return None

        def release(self):
            return None

    class _FakeCondition:
        def __init__(self):
            self.notify_calls = 0

        def wait(self):  # pragma: no cover - never blocks in unit tests
            raise AssertionError("unit tests never block")

        def notify(self):
            self.notify_calls += 1

        def notify_n(self, n):
            self.notify_calls += n

        def notify_all(self):
            pass

    class FakeBackend:
        name = "fake"

        def create_lock(self):
            return TestConditionManagerPrimitives._FakeLock()

        def create_condition(self, lock):
            return TestConditionManagerPrimitives._FakeCondition()

        def current_id(self):
            return 0

    def make_manager(self, owner, use_tags=True):
        backend = self.FakeBackend()
        return ConditionManager(
            owner=owner,
            backend=backend,
            lock=backend.create_lock(),
            stats=MonitorStats(),
            use_tags=use_tags,
        )

    def entry_with_waiters(self, manager, source, shared, local_values, waiters=1):
        compiled = compile_predicate(source, shared, set(local_values))
        entry = manager.acquire_entry(
            compiled.globalized(local_values), from_shared_predicate=compiled.is_shared
        )
        for _ in range(waiters):
            manager.add_waiter(entry)
        return entry

    def test_signal_many_wakes_up_to_limit(self):
        monitor = self.FakeMonitor(count=10)
        manager = self.make_manager(monitor)
        entries = [
            self.entry_with_waiters(manager, "count >= num", {"count"}, {"num": num})
            for num in (2, 4, 6)
        ]
        assert manager.signal_many(2) == 2
        assert sum(entry.pending_signals for entry in entries) == 2
        assert manager.signal_many(5) == 1  # only one un-promised waiter left

    def test_signal_many_spends_several_signals_on_one_entry(self):
        monitor = self.FakeMonitor(count=10)
        manager = self.make_manager(monitor)
        entry = self.entry_with_waiters(
            manager, "count >= num", {"count"}, {"num": 3}, waiters=3
        )
        assert manager.signal_many(2) == 2
        assert entry.pending_signals == 2
        assert entry.condition.notify_calls == 2

    def test_signal_many_rejects_non_positive_limit(self):
        manager = self.make_manager(self.FakeMonitor(count=0))
        with pytest.raises(ValueError):
            manager.signal_many(0)

    def test_signal_many_returns_zero_when_nothing_is_ready(self):
        monitor = self.FakeMonitor(count=0)
        manager = self.make_manager(monitor)
        self.entry_with_waiters(manager, "count >= num", {"count"}, {"num": 5})
        assert manager.signal_many(4) == 0

    def test_enqueue_sequence_numbers_are_monotonic(self):
        monitor = self.FakeMonitor(count=0)
        manager = self.make_manager(monitor, use_tags=False)
        first = self.entry_with_waiters(manager, "count >= num", {"count"}, {"num": 5})
        second = self.entry_with_waiters(manager, "count >= num", {"count"}, {"num": 9})
        assert first.next_unsignalled_seq < second.next_unsignalled_seq
        manager.remove_waiter(first)
        assert first.next_unsignalled_seq is None

    def test_fifo_relay_picks_the_longest_waiting_true_predicate(self):
        monitor = self.FakeMonitor(count=0)
        manager = self.make_manager(monitor, use_tags=False)
        oldest = self.entry_with_waiters(manager, "count >= num", {"count"}, {"num": 4})
        newest = self.entry_with_waiters(manager, "count >= num", {"count"}, {"num": 2})
        monitor.count = 10  # both predicates now hold
        assert manager.relay_signal_fifo() is True
        assert oldest.pending_signals == 1
        assert newest.pending_signals == 0
        assert manager.relay_signal_fifo() is True
        assert newest.pending_signals == 1

    def test_fifo_relay_skips_false_predicates(self):
        monitor = self.FakeMonitor(count=3)
        manager = self.make_manager(monitor, use_tags=False)
        blocked = self.entry_with_waiters(manager, "count >= num", {"count"}, {"num": 9})
        ready = self.entry_with_waiters(manager, "count >= num", {"count"}, {"num": 1})
        assert manager.relay_signal_fifo() is True
        assert blocked.pending_signals == 0
        assert ready.pending_signals == 1

    def test_fifo_relay_returns_false_when_nothing_ready(self):
        monitor = self.FakeMonitor(count=0)
        manager = self.make_manager(monitor, use_tags=False)
        self.entry_with_waiters(manager, "count >= num", {"count"}, {"num": 5})
        assert manager.relay_signal_fifo() is False

    def test_fifo_relay_skips_retired_entries(self):
        monitor = self.FakeMonitor(count=10)
        manager = self.make_manager(monitor, use_tags=False)
        # Retire a few complex predicates (no waiters left -> inactive, but
        # they stay in the table for reuse).
        for num in (20, 30, 40):
            entry = self.entry_with_waiters(
                manager, "count >= num", {"count"}, {"num": num}
            )
            manager.remove_waiter(entry)
        active = self.entry_with_waiters(manager, "count >= num", {"count"}, {"num": 1})
        assert manager.relay_signal_fifo() is True
        assert active.pending_signals == 1
        # Only the live entry was scanned — retired rows cost nothing.
        assert manager._stats.exhaustive_checks == 1


class TestFifoFairness:
    def test_longest_waiter_wins_when_several_predicates_hold(self):
        backend = SimulationBackend(seed=19)
        board = Scoreboard(backend=backend, signalling="relay_fifo")
        order = []

        def waiter(threshold):
            def body():
                board.wait_for(threshold)
                order.append(threshold)
            return body

        def scorer():
            board.add(100)  # all predicates become true at once

        # Spawn order = enqueue order on the deterministic default scheduler.
        backend.run([waiter(t) for t in (30, 10, 20)] + [scorer])
        assert order == [30, 10, 20]


class TestLateFieldCompilation:
    def test_predicate_may_reference_a_field_assigned_after_first_wait(self):
        class Lazy(AutoSynchMonitor):
            def __init__(self, **kwargs):
                super().__init__(**kwargs)
                self.ready = True

            def warm_up(self):
                # Forces the shared-name set to be computed before ``level``
                # exists.
                self.wait_until("ready")

            def arm(self, level):
                self.level = level

            def check(self):
                self.wait_until("level >= 1")
                return self.level

        lazy = Lazy()
        lazy.warm_up()
        lazy.arm(3)
        assert lazy.check() == 3

    def test_unknown_names_still_raise(self):
        from repro.predicates import ClassificationError

        class Bad(AutoSynchMonitor):
            def __init__(self):
                super().__init__()
                self.x = 1

            def go(self):
                self.wait_until("no_such_field > 0")

        with pytest.raises(ClassificationError):
            Bad().go()


class TestDerivedMechanismSets:
    def test_legacy_tuple_is_derived_from_the_registry(self):
        from repro.problems.base import AUTOMATIC_MECHANISMS, MECHANISMS, all_mechanisms

        assert set(AUTOMATIC_MECHANISMS) <= set(available_policies())
        assert MECHANISMS == ("explicit",) + AUTOMATIC_MECHANISMS
        assert set(all_mechanisms()) == {"explicit", *available_policies()}

    def test_problems_accept_every_registered_policy(self):
        from repro.problems import get_problem

        problem = get_problem("bounded_buffer")
        for name in available_policies():
            assert name in problem.supported_mechanisms()
        with pytest.raises(ValueError):
            problem._check_mechanism("telepathy")

    def test_custom_policy_is_usable_end_to_end(self):
        calls = []

        class CountingRelay(RelayTaggedPolicy):
            name = "relay_counting_test"
            description = "tagged relay that counts hand-offs (test only)"

            def relay(self):
                calls.append(1)
                return super().relay()

        register_policy(CountingRelay)
        try:
            assert "relay_counting_test" in available_policies()
            backend = SimulationBackend(seed=2)
            cell = Cell(backend=backend, signalling="relay_counting_test")
            taken = []
            backend.run(
                [lambda: taken.append(cell.take()), lambda: cell.put(5)],
                ["consumer", "producer"],
            )
            assert taken == [5]
            assert calls  # the custom hook actually drove the signalling
            from repro.problems import get_problem

            assert "relay_counting_test" in get_problem("h2o").supported_mechanisms()
        finally:
            unregister_policy("relay_counting_test")


class TestReportLabels:
    def test_mechanism_labels_come_from_policy_describe(self):
        from repro.harness.results import mechanism_label

        assert mechanism_label("autosynch") == describe_policy("autosynch")
        assert "explicit" in mechanism_label("explicit")
        assert mechanism_label("no_such_mechanism") == "no_such_mechanism"

    def test_series_table_includes_a_policy_legend(self):
        from repro.harness.report import format_series_table
        from repro.harness.results import ExperimentSeries, MeasurementPoint

        series = ExperimentSeries(name="demo", x_label="#t", backend="simulation")
        for mechanism in ("autosynch", "relay_batched"):
            series.add(
                MeasurementPoint(
                    problem="demo",
                    mechanism=mechanism,
                    backend="simulation",
                    threads=2,
                    repetitions=1,
                    wall_time=0.1,
                    modelled_runtime=0.1,
                    context_switches=1.0,
                    predicate_evaluations=1.0,
                    signals=1.0,
                )
            )
        text = format_series_table(series, "wall_time")
        assert describe_policy("autosynch") in text
        assert describe_policy("relay_batched") in text
        assert describe_policy("relay_batched") not in format_series_table(
            series, "wall_time", legend=False
        )
