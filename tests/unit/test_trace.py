"""Unit tests for signalling traces and the relay-invariance validation mode."""

from __future__ import annotations

import pytest

from repro.core import AutoSynchMonitor, ExplicitMonitor, Tracer
from repro.core.trace import TraceEvent
from repro.runtime import SimulationBackend


class TracedCell(AutoSynchMonitor):
    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.value = None

    def put(self, value):
        self.wait_until("value is None")
        self.value = value

    def take(self):
        self.wait_until("value is not None")
        value = self.value
        self.value = None
        return value


class TestTracerBasics:
    def test_events_are_sequenced(self):
        tracer = Tracer()
        tracer.record("enter", "t1", detail="put")
        tracer.record("exit", "t1", detail="put")
        sequences = [event.sequence for event in tracer.events]
        assert sequences == sorted(sequences)
        assert len(sequences) == 2

    def test_count_and_of_kind(self):
        tracer = Tracer()
        tracer.record("signal", "t1", predicate="count > 0")
        tracer.record("signal", "t2", predicate="count > 1")
        tracer.record("wait", "t3", predicate="count > 2")
        assert tracer.count("signal") == 2
        assert tracer.count("wait") == 1
        assert [e.predicate for e in tracer.of_kind("signal")] == ["count > 0", "count > 1"]

    def test_summary(self):
        tracer = Tracer()
        tracer.record("enter", "t1")
        tracer.record("enter", "t2")
        tracer.record("exit", "t1")
        assert tracer.summary() == {"enter": 2, "exit": 1}

    def test_capacity_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            tracer.record("enter", f"t{index}")
        assert len(tracer.events) == 3
        assert tracer.dropped == 2
        assert tracer.events[0].thread == "t2"
        assert "earlier events dropped" in tracer.format()

    def test_format_filters_by_kind(self):
        tracer = Tracer()
        tracer.record("enter", "t1", detail="put")
        tracer.record("signal", "t1", predicate="value is None")
        text = tracer.format(kinds=["signal"])
        assert "signal" in text and "enter" not in text

    def test_clear(self):
        tracer = Tracer()
        tracer.record("enter", "t1")
        tracer.clear()
        assert tracer.events == ()
        assert tracer.summary() == {}

    def test_event_format_contains_fields(self):
        event = TraceEvent(sequence=7, kind="signal", thread="3", predicate="x > 1", detail="why")
        text = event.format()
        assert "#00007" in text and "signal" in text and "x > 1" in text and "why" in text


class TestMonitorTracing:
    def test_single_threaded_trace_records_entries_and_exits(self):
        tracer = Tracer()
        cell = TracedCell(tracer=tracer)
        cell.put(1)
        cell.take()
        assert tracer.count("enter") == 2
        assert tracer.count("exit") == 2
        details = [event.detail for event in tracer.of_kind("enter")]
        assert details == ["put", "take"]

    def test_blocking_trace_records_waits_and_signals(self):
        tracer = Tracer()
        backend = SimulationBackend(seed=2)
        cell = TracedCell(backend=backend, tracer=tracer, signalling="autosynch")

        def consumer():
            cell.take()

        def producer():
            cell.put(42)

        backend.run([consumer, producer], ["consumer", "producer"])
        assert tracer.count("wait") == 1
        assert tracer.count("signal") == 1
        assert tracer.count("wakeup") == 1
        # Signals record the canonical (globalized) predicate form.
        assert tracer.predicates_signalled() == ["value != None"]
        assert tracer.count("register") == 1

    def test_no_tracer_means_no_overhead_path(self):
        cell = TracedCell()
        cell.put(1)
        assert cell.tracer is None

    def test_explicit_monitor_tracing(self):
        class Gate(ExplicitMonitor):
            def __init__(self, **kwargs):
                super().__init__(**kwargs)
                self.open = False
                self.opened = self.new_condition("opened")

            def release(self):
                self.open = True
                self.signal_all(self.opened)

        tracer = Tracer()
        gate = Gate(tracer=tracer)
        gate.release()
        assert tracer.count("signal_all") == 1
        assert tracer.of_kind("signal_all")[0].predicate == "opened"

    def test_baseline_trace_records_signal_all(self):
        tracer = Tracer()
        backend = SimulationBackend(seed=3)
        cell = TracedCell(backend=backend, tracer=tracer, signalling="baseline")
        backend.run([cell.take, lambda: cell.put("x")], ["consumer", "producer"])
        assert tracer.count("signal_all") > 0


class TestValidationMode:
    def test_validation_passes_on_correct_workload(self):
        backend = SimulationBackend(seed=6)
        cell = TracedCell(backend=backend, signalling="autosynch", validate=True)
        results = []
        backend.run([lambda: results.append(cell.take()), lambda: cell.put(9)])
        assert results == [9]

    def test_validation_detects_a_missed_signal(self):
        """Sabotage the tag structures to prove the validator catches pruning bugs."""
        backend = SimulationBackend(seed=6)
        cell = TracedCell(backend=backend, signalling="autosynch", validate=True)
        from repro.core import MonitorError

        def consumer():
            cell.take()

        def producer():
            cell.put(5)

        def saboteur():
            # Empty the tag index behind the condition manager's back so the
            # relay search can no longer find the waiting consumer.
            manager = cell.condition_manager
            if manager is not None:
                manager._indices.clear()
                manager._untagged.clear()
                manager._untagged_pending.clear()
                manager._untagged_by_name.clear()

        # Order matters: the consumer must wait first, then the saboteur runs,
        # then the producer's exit triggers relay + validation.
        with pytest.raises(MonitorError, match="relay invariance violated"):
            backend.run([consumer, saboteur, producer], ["consumer", "saboteur", "producer"])
