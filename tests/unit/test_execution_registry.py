"""Unit tests for the executor registry and the executor contract surface."""

from __future__ import annotations

import pytest

from repro.harness.execution import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    available_executors,
    create_executor,
    describe_executor,
    get_executor,
    register_executor,
)
from repro.harness.execution.registry import _REGISTRY


class TestRegistry:
    def test_builtins_are_registered(self):
        names = available_executors()
        assert "serial" in names
        assert "process" in names

    def test_get_executor_resolves_classes(self):
        assert get_executor("serial") is SerialExecutor
        assert get_executor("process") is ProcessExecutor

    def test_unknown_name_raises_with_available_list(self):
        with pytest.raises(ValueError, match="unknown executor 'warp'"):
            get_executor("warp")
        with pytest.raises(ValueError, match="serial"):
            get_executor("warp")

    def test_duplicate_registration_is_rejected(self):
        class Impostor(SerialExecutor):
            name = "serial"

        with pytest.raises(ValueError, match="already registered"):
            register_executor(Impostor)
        assert get_executor("serial") is SerialExecutor

    def test_replace_allows_override_and_restore(self):
        class Temporary(SerialExecutor):
            name = "serial"

        register_executor(Temporary, replace=True)
        try:
            assert get_executor("serial") is Temporary
        finally:
            register_executor(SerialExecutor, replace=True)
        assert get_executor("serial") is SerialExecutor

    def test_non_executor_is_rejected(self):
        with pytest.raises(TypeError):
            register_executor(object)

    def test_nameless_executor_is_rejected(self):
        class Nameless(SerialExecutor):
            name = ""

        with pytest.raises(ValueError, match="unique 'name'"):
            register_executor(Nameless)

    def test_registration_does_not_leak_from_tests(self):
        # Guard: the registry only holds the built-ins plus any executors
        # deliberately registered at import time.
        assert set(_REGISTRY) == set(available_executors())


class TestCreateExecutor:
    def test_from_name_with_jobs(self):
        executor = create_executor("process", jobs=4)
        assert isinstance(executor, ProcessExecutor)
        assert executor.jobs == 4

    def test_from_class(self):
        executor = create_executor(SerialExecutor, jobs=2)
        assert isinstance(executor, SerialExecutor)
        assert executor.jobs == 2

    def test_from_instance_keeps_its_own_jobs(self):
        configured = ProcessExecutor(jobs=8)
        assert create_executor(configured, jobs=1) is configured
        assert configured.jobs == 8

    def test_invalid_spec_raises(self):
        with pytest.raises(TypeError, match="registered executor name"):
            create_executor(42)

    def test_jobs_below_one_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            create_executor("serial", jobs=0)

    def test_default_jobs_serial_is_one(self):
        assert create_executor("serial").jobs == 1

    def test_default_jobs_process_is_core_count(self):
        import os

        # Selecting the process executor without a job count must actually
        # parallelize: the default is one worker per core, not 1.
        assert create_executor("process").jobs == max(1, os.cpu_count() or 1)


class TestSerialFallback:
    """The process executor must not *slow down* hosts a pool cannot help."""

    def test_single_effective_worker_reason(self):
        from repro.harness.execution.process import serial_fallback_reason

        assert serial_fallback_reason(1, 10) is not None
        assert serial_fallback_reason(4, 1) is not None
        assert serial_fallback_reason(4, 0) is not None

    def test_single_cpu_host_reason(self, monkeypatch):
        import os

        from repro.harness.execution import process as process_module

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        reason = process_module.serial_fallback_reason(4, 10)
        assert reason is not None and "single-CPU" in reason
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert process_module.serial_fallback_reason(4, 10) is None

    def test_run_tasks_falls_back_in_process_on_one_cpu(self, monkeypatch):
        import os

        # A pool on a 1-CPU host just time-slices one core while paying
        # fork/IPC overhead (measured 0.72-0.83x of serial); the executor
        # must take the in-process path instead.  Tasks run in this process
        # (observable side effects) iff the fallback was taken.
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        calls = []

        def record(task):
            calls.append(task)
            return -task

        results = ProcessExecutor(jobs=4).run_tasks(record, [1, 2, 3])
        assert results == [-1, -2, -3]
        # Side effects are visible here, so the tasks ran in this very
        # process — a worker pool would have kept (or crashed on) them.
        assert calls == [1, 2, 3]


class TestDescriptions:
    def test_describe_executor(self):
        assert "one cell at a time" in describe_executor("serial")
        assert "worker processes" in describe_executor("process")

    def test_process_describe_interpolates_jobs(self):
        assert "jobs=4" in ProcessExecutor(jobs=4).describe()

    def test_base_describe_falls_back_to_name(self):
        class Bare(Executor):
            name = "bare"

            def run_tasks(self, fn, tasks, progress=None):  # pragma: no cover
                return []

        assert Bare().describe() == "bare"
