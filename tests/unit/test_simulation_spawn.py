"""Unit tests for dynamic thread creation and handles on the simulator."""

from __future__ import annotations

import pytest

from repro.runtime import SimulationBackend
from repro.runtime.simulation import SimulationError


class TestSpawn:
    def test_spawn_before_run_registers_for_next_run(self):
        backend = SimulationBackend(seed=1)
        log = []
        handle = backend.spawn(lambda: log.append("spawned"), name="pre-registered")
        assert handle.name == "pre-registered"
        assert handle.alive
        backend.run([lambda: log.append("main")])
        assert sorted(log) == ["main", "spawned"]

    def test_spawn_during_run_executes_new_thread(self):
        backend = SimulationBackend(seed=1)
        log = []

        def child():
            log.append("child")

        def parent():
            log.append("parent-before")
            backend.spawn(child, name="child")
            backend.yield_control()
            log.append("parent-after")

        backend.run([parent], ["parent"])
        assert "child" in log
        assert log[0] == "parent-before"

    def test_handle_reports_completion(self):
        backend = SimulationBackend(seed=1)
        handle = backend.spawn(lambda: None, name="worker")
        backend.run([lambda: None])
        handle.join(timeout=1)
        assert not handle.alive

    def test_spawned_threads_share_monitor_state(self):
        from repro.core import AutoSynchMonitor

        class Counter(AutoSynchMonitor):
            def __init__(self, **kwargs):
                super().__init__(**kwargs)
                self.value = 0

            def bump(self):
                self.value += 1

            def wait_for(self, target):
                self.wait_until("value >= target", target=target)

        backend = SimulationBackend(seed=2)
        counter = Counter(backend=backend)

        def waiter():
            counter.wait_for(3)
            # Spawn a late worker once the first three bumps have happened.
            backend.spawn(counter.bump, name="late-bump")
            counter.wait_for(4)

        backend.run([waiter] + [counter.bump] * 3, ["waiter", "b0", "b1", "b2"])
        assert counter.value == 4

    def test_default_names_are_generated(self):
        backend = SimulationBackend(seed=0)
        seen = []
        backend.run([lambda: seen.append(backend.current_name()) for _ in range(2)])
        assert len(set(seen)) == 2
        assert all(name.startswith("sim-") for name in seen)

    def test_names_argument_is_respected(self):
        backend = SimulationBackend(seed=0)
        seen = []
        backend.run([lambda: seen.append(backend.current_name())], ["special-name"])
        assert seen == ["special-name"]
