"""Unit tests for the import-time @autosynch decorator and waituntil stub."""

from __future__ import annotations

import threading

import pytest

from repro.core import AutoSynchMonitor
from repro.preprocessor import PreprocessorError, autosynch, waituntil
from repro.runtime import SimulationBackend


@autosynch
class Mailbox:
    """One-slot mailbox written in the paper's surface syntax."""

    def __init__(self):
        self.letter = None

    def post(self, letter):
        waituntil(self.letter is None)
        self.letter = letter

    def collect(self):
        waituntil(self.letter is not None)
        letter = self.letter
        self.letter = None
        return letter


@autosynch(signalling="autosynch_t")
class CountingGate:
    def __init__(self, threshold):
        self.threshold = threshold
        self.arrivals = 0

    def arrive(self):
        self.arrivals += 1

    def pass_gate(self):
        waituntil(self.arrivals >= self.threshold)
        return self.arrivals


class TestDecoratedClasses:
    def test_decorated_class_is_a_monitor(self):
        assert issubclass(Mailbox, AutoSynchMonitor)

    def test_basic_behaviour(self):
        box = Mailbox()
        box.post("hello")
        assert box.collect() == "hello"

    def test_generated_source_is_attached(self):
        assert "wait_until" in Mailbox.__autosynch_source__
        assert "waituntil" not in Mailbox.__autosynch_source__.replace("wait_until", "")

    def test_metadata_preserved(self):
        assert Mailbox.__doc__ == "One-slot mailbox written in the paper's surface syntax."
        assert Mailbox.__qualname__ == "Mailbox"
        assert Mailbox.__module__ == __name__

    def test_decorator_options_are_applied(self):
        gate = CountingGate(2)
        assert gate.signalling == "autosynch_t"

    def test_locals_are_captured(self):
        gate = CountingGate(1)
        gate.arrive()
        assert gate.pass_gate() == 1

    def test_blocking_works_with_real_threads(self):
        box = Mailbox()
        received = []

        def reader():
            received.append(box.collect())

        thread = threading.Thread(target=reader)
        thread.start()
        box.post("letter")
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert received == ["letter"]

    def test_decorated_class_works_on_simulation_backend(self):
        backend = SimulationBackend(seed=4)

        @autosynch(backend=None)
        class Local:
            def __init__(self):
                self.done = False

            def finish(self):
                self.done = True

            def wait_done(self):
                waituntil(self.done)

        # Non-literal options (like a backend object) are applied after
        # transformation through the options dictionary.
        Local._autosynch_options = {"backend": backend}
        monitor = Local()
        backend.run([monitor.wait_done, monitor.finish], ["waiter", "finisher"])
        assert monitor.done

    def test_stats_are_available(self):
        box = Mailbox()
        box.post("x")
        box.collect()
        assert box.stats.entries == 2


class TestDecoratorErrors:
    def test_decorator_with_positional_and_options_is_rejected(self):
        with pytest.raises(TypeError):
            autosynch(Mailbox, signalling="baseline")

    def test_waituntil_outside_autosynch_class_raises(self):
        with pytest.raises(PreprocessorError):
            waituntil(True)

    def test_waituntil_in_plain_function_raises_at_runtime(self):
        def plain():
            waituntil(1 < 2)

        with pytest.raises(PreprocessorError):
            plain()
