"""Unit tests for predicate tagging (Definitions 6-8, Fig. 3)."""

from __future__ import annotations

import pytest

from repro.predicates import (
    Tag,
    TagKind,
    analyze_predicate,
    classify,
    globalize,
    parse_predicate,
    tag_conjunction,
    to_dnf,
)


def tags_for(source, shared=(), local_values=None):
    """Full front-end pipeline: parse, classify, globalize, DNF, tag."""
    local_values = local_values or {}
    expr = classify(parse_predicate(source), shared, set(local_values))
    shared_form = globalize(expr, local_values)
    return analyze_predicate(to_dnf(shared_form))


class TestTagKinds:
    def test_equivalence_tag(self):
        (tag,) = tags_for("turn == me", shared={"turn"}, local_values={"me": 7})
        assert tag.kind is TagKind.EQUIVALENCE
        assert tag.expr_key == "turn"
        assert tag.key == 7
        assert tag.op is None

    def test_threshold_tag_lower_bound(self):
        (tag,) = tags_for("count >= num", shared={"count"}, local_values={"num": 48})
        assert tag.kind is TagKind.THRESHOLD
        assert tag.expr_key == "count"
        assert tag.key == 48
        assert tag.op == ">="

    def test_threshold_tag_upper_bound(self):
        (tag,) = tags_for("count < capacity", shared={"count"}, local_values={"capacity": 8})
        assert tag.kind is TagKind.THRESHOLD
        assert tag.op == "<"
        assert tag.key == 8

    def test_none_tag_for_boolean_atom(self):
        (tag,) = tags_for("ready", shared={"ready"})
        assert tag.kind is TagKind.NONE
        assert tag.expr_key is None

    def test_none_tag_for_inequality(self):
        # x != 9 gets a None tag (Fig. 7 shows inequalities in the None bucket).
        (tag,) = tags_for("x != 9", shared={"x"})
        assert tag.kind is TagKind.NONE

    def test_papers_threshold_globalization_example(self):
        # x + b > 2y + a with a=11, b=2  ->  (Threshold, x - 2 * y, 9, >)
        (tag,) = tags_for(
            "x + b > 2 * y + a", shared={"x", "y"}, local_values={"a": 11, "b": 2}
        )
        assert tag.kind is TagKind.THRESHOLD
        assert tag.expr_key == "x - 2 * y"
        assert tag.key == 9
        assert tag.op == ">"

    def test_equivalence_on_combined_shared_expression(self):
        (tag,) = tags_for("x - a == y + b", shared={"x", "y"}, local_values={"a": 11, "b": 2})
        assert tag.kind is TagKind.EQUIVALENCE
        assert tag.expr_key == "x - y"
        assert tag.key == 13


class TestTagAssignmentRules:
    def test_equivalence_has_priority_over_threshold(self):
        (tag,) = tags_for(
            "count >= num and turn == me",
            shared={"count", "turn"},
            local_values={"num": 3, "me": 1},
        )
        assert tag.kind is TagKind.EQUIVALENCE
        assert tag.expr_key == "turn"

    def test_threshold_chosen_when_no_equivalence(self):
        (tag,) = tags_for(
            "count >= num and not busy", shared={"count", "busy"}, local_values={"num": 3}
        )
        assert tag.kind is TagKind.THRESHOLD

    def test_only_one_tag_per_conjunction(self):
        tags = tags_for(
            "x == 1 and y == 2 and z >= 3", shared={"x", "y", "z"}
        )
        assert len(tags) == 1
        assert tags[0].kind is TagKind.EQUIVALENCE

    def test_one_tag_per_disjunct(self):
        tags = tags_for("x >= 8 or x == 3", shared={"x"})
        assert len(tags) == 2
        kinds = {tag.kind for tag in tags}
        assert kinds == {TagKind.THRESHOLD, TagKind.EQUIVALENCE}

    def test_unseparable_comparison_gets_none_tag(self):
        (tag,) = tags_for(
            "count * num > 10", shared={"count"}, local_values={"num": 2}
        )
        # After globalization ``count * 2 > 10`` is still a threshold on the
        # shared expression ``count * 2`` — check it is NOT a None tag.
        assert tag.kind is TagKind.THRESHOLD
        assert tag.expr_key == "count * 2"

    def test_conjunction_with_only_locals_gets_none_tag(self):
        (tag,) = tags_for("flag", shared=(), local_values={"flag": 1})
        # After globalization the atom is the constant 1 -> DNF keeps it as an
        # atom with no shared expression, hence a None tag.
        assert tag.kind is TagKind.NONE


class TestTagValidation:
    def test_none_tag_must_be_bare(self):
        with pytest.raises(ValueError):
            Tag(TagKind.NONE, expr_key="x")

    def test_equivalence_requires_expression(self):
        with pytest.raises(ValueError):
            Tag(TagKind.EQUIVALENCE, expr_key=None, shared_expr=None, key=3)

    def test_threshold_requires_valid_operator(self):
        from repro.predicates import parse_predicate as parse

        with pytest.raises(ValueError):
            Tag(
                TagKind.THRESHOLD,
                expr_key="x",
                shared_expr=parse("x"),
                key=3,
                op="!=",
            )

    def test_equivalence_must_not_carry_operator(self):
        from repro.predicates import parse_predicate as parse

        with pytest.raises(ValueError):
            Tag(TagKind.EQUIVALENCE, expr_key="x", shared_expr=parse("x"), key=3, op=">")

    def test_describe_is_human_readable(self):
        (tag,) = tags_for("count >= num", shared={"count"}, local_values={"num": 5})
        assert "Threshold" in tag.describe()
        assert "count" in tag.describe()

    def test_tag_conjunction_direct(self):
        dnf = to_dnf(
            classify(parse_predicate("self.count > 0"), {"count"}, set())
        )
        tag = tag_conjunction(dnf.conjunctions[0])
        assert tag.kind is TagKind.THRESHOLD
        assert tag.op == ">"
        assert tag.key == 0
