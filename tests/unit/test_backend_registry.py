"""The backend plugin registry and the ``Backend.now()`` time-unit contract.

Backend selection rides the shared :class:`~repro.core.plugin_registry.
PluginRegistry` idiom: names resolve through :mod:`repro.runtime.registry`,
unknown names raise ``ValueError`` listing the registered backends, and
construction funnels through :meth:`Backend.build` so ``seed`` /
``run_timeout`` reach the backends that understand them.

The time-unit contract — documented once on :meth:`Backend.now` — says:
``now()`` is monotonic during a run, its origin is arbitrary, and its unit
is the backend's ``time_unit`` classvar (wall-clock seconds on threading
and asyncio, scheduling steps under simulation).  Deadline arithmetic
everywhere is ``deadline = now() + timeout``, so a timed ``wait_until``
means the same thing on every backend in that backend's own units.
"""

from __future__ import annotations

import pytest

from repro.core import AutoSynchMonitor, WaitTimeout
from repro.harness.saturation import BACKENDS, make_backend
from repro.runtime import (
    AsyncioBackend,
    Backend,
    SimulationBackend,
    ThreadingBackend,
    available_backends,
    create_backend,
    describe_backend,
    get_backend,
    register_backend,
    unregister_backend,
)


class TestRegistry:
    def test_standard_backends_registered(self):
        assert available_backends()[:3] == ("simulation", "threading", "asyncio")

    def test_get_returns_classes(self):
        assert get_backend("simulation") is SimulationBackend
        assert get_backend("threading") is ThreadingBackend
        assert get_backend("asyncio") is AsyncioBackend

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError) as excinfo:
            get_backend("gevent")
        message = str(excinfo.value)
        assert "gevent" in message
        for name in available_backends():
            assert name in message

    def test_describe_is_nonempty_for_every_backend(self):
        for name in available_backends():
            assert describe_backend(name)

    def test_create_backend_forwards_seed_and_run_timeout(self):
        backend = create_backend("simulation", seed=42, run_timeout=3.5)
        assert isinstance(backend, SimulationBackend)

    def test_create_backend_ignores_knobs_without_meaning(self):
        # threading/asyncio have no seed or run timeout; build() drops them.
        assert isinstance(
            create_backend("threading", seed=9, run_timeout=1.0), ThreadingBackend
        )
        assert isinstance(
            create_backend("asyncio", seed=9, run_timeout=1.0), AsyncioBackend
        )

    def test_register_and_unregister_custom_backend(self):
        class NullBackend(ThreadingBackend):
            name = "null-test-backend"
            description = "throwaway backend for the registry test"

        register_backend(NullBackend)
        try:
            assert "null-test-backend" in available_backends()
            assert isinstance(create_backend("null-test-backend"), NullBackend)
        finally:
            unregister_backend("null-test-backend")
        assert "null-test-backend" not in available_backends()

    def test_duplicate_registration_raises_without_replace(self):
        # Re-registering the same class is idempotent; a *different* class
        # claiming a taken name is the accidental-shadowing error.
        class Impostor(ThreadingBackend):
            name = "simulation"

        with pytest.raises(ValueError):
            register_backend(Impostor)
        assert get_backend("simulation") is SimulationBackend

    def test_make_backend_goes_through_the_registry(self):
        assert isinstance(make_backend("asyncio"), AsyncioBackend)
        assert tuple(BACKENDS)[:3] == ("simulation", "threading", "asyncio")
        with pytest.raises(ValueError) as excinfo:
            make_backend("bogus")
        assert "bogus" in str(excinfo.value)


class _NeverReady(AutoSynchMonitor):
    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.ready = False

    def await_ready(self, timeout):
        self.wait_until("ready", timeout=timeout)


class TestTimeUnitContract:
    def test_declared_units(self):
        assert Backend.time_unit == "seconds"
        assert ThreadingBackend.time_unit == "seconds"
        assert AsyncioBackend.time_unit == "seconds"
        assert SimulationBackend.time_unit == "steps"

    def test_threading_now_is_monotonic_seconds(self):
        backend = ThreadingBackend()
        first = backend.now()
        second = backend.now()
        assert second >= first
        assert second - first < 1.0  # two adjacent calls: sub-second apart

    def test_asyncio_now_is_monotonic_seconds(self):
        backend = AsyncioBackend()
        first = backend.now()
        second = backend.now()
        assert second >= first
        assert second - first < 1.0

    def test_simulation_now_counts_steps(self):
        backend = SimulationBackend(seed=0)
        observed = []

        def body():
            observed.append(backend.now())
            observed.append(backend.now())

        backend.run([body])
        assert observed[0] >= 0
        assert observed[0] <= observed[1]
        # Steps, not wall-clock: two adjacent reads are whole steps apart.
        assert observed[1] - observed[0] == int(observed[1] - observed[0])

    @pytest.mark.parametrize("name", ["threading", "asyncio"])
    def test_wait_timeout_deadline_in_seconds(self, name):
        """A timed wait_until on a seconds backend expires near the deadline
        (uniform ``deadline = now() + timeout`` arithmetic — no unit drift)."""
        backend = create_backend(name)
        monitor = _NeverReady(backend=backend)
        elapsed = []

        def body():
            started = backend.now()
            with pytest.raises(WaitTimeout):
                monitor.await_ready(timeout=0.2)
            elapsed.append(backend.now() - started)

        backend.run([body])
        assert 0.2 <= elapsed[0] < 2.0
        assert monitor.stats.wait_timeouts == 1

    def test_wait_timeout_deadline_in_steps(self):
        backend = SimulationBackend(seed=0)
        monitor = _NeverReady(backend=backend)

        def body():
            with pytest.raises(WaitTimeout):
                monitor.await_ready(timeout=25)

        backend.run([body])
        assert monitor.stats.wait_timeouts == 1
