"""Timed waits: kernel condition timeouts and ``wait_until(timeout=...)``.

Simulation time is scheduling steps (``Backend.now()`` returns the step
counter), so a timeout of N means "N scheduling decisions", fully
deterministic; on the threading backend the same API is wall-clock seconds.
"""

from __future__ import annotations

import pytest

from repro.core import AutoSynchMonitor, MonitorError, WaitTimeout
from repro.runtime import SimulationBackend, ThreadingBackend


class NeverReady(AutoSynchMonitor):
    """The predicate is never true: every wait must time out (or hang)."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.ready = False

    def await_ready(self, timeout=None):
        self.wait_until("ready", timeout=timeout)

    def make_ready(self):
        self.ready = True


class Cell(AutoSynchMonitor):
    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.value = None

    def put(self, value):
        self.wait_until("value is None")
        self.value = value

    def take(self, timeout=None):
        self.wait_until("value is not None", timeout=timeout)
        value = self.value
        self.value = None
        return value


class TestKernelTimedWait:
    def test_lone_waiter_times_out(self, sim_backend):
        lock = sim_backend.create_lock()
        condition = sim_backend.create_condition(lock)
        results = []

        def waiter():
            lock.acquire()
            results.append(condition.wait(timeout=5))
            lock.release()

        sim_backend.run([waiter])
        assert results == [False]

    def test_notification_wins_over_timeout(self, sim_backend):
        lock = sim_backend.create_lock()
        condition = sim_backend.create_condition(lock)
        results = []

        def waiter():
            lock.acquire()
            results.append(condition.wait(timeout=500))
            lock.release()

        def notifier():
            lock.acquire()
            condition.notify()
            lock.release()

        sim_backend.run([waiter, notifier])
        assert results == [True]

    def test_untimed_wait_api_still_returns_true(self, sim_backend):
        lock = sim_backend.create_lock()
        condition = sim_backend.create_condition(lock)
        results = []

        def waiter():
            lock.acquire()
            results.append(condition.wait())
            lock.release()

        def notifier():
            lock.acquire()
            condition.notify()
            lock.release()

        sim_backend.run([waiter, notifier])
        assert results == [True]

    def test_timeout_expires_while_others_run(self, sim_backend):
        lock = sim_backend.create_lock()
        condition = sim_backend.create_condition(lock)
        results = []

        def waiter():
            lock.acquire()
            results.append(condition.wait(timeout=3))
            lock.release()

        def busy():
            for _ in range(40):
                sim_backend.yield_control()

        sim_backend.run([waiter, busy])
        assert results == [False]

    def test_now_counts_steps(self, sim_backend):
        seen = []

        def worker():
            seen.append(sim_backend.now())
            sim_backend.yield_control()
            seen.append(sim_backend.now())

        sim_backend.run([worker])
        assert seen[1] > seen[0]


class TestWaitUntilTimeoutSimulation:
    def test_wait_until_times_out(self, sim_backend):
        monitor = NeverReady(backend=sim_backend)
        errors = []

        def worker():
            try:
                monitor.await_ready(timeout=10)
            except WaitTimeout as exc:
                errors.append(exc)

        sim_backend.run([worker])
        assert len(errors) == 1
        assert errors[0].timeout == 10
        assert "ready" in errors[0].predicate
        assert "timed out" in str(errors[0])
        assert monitor.stats.wait_timeouts == 1

    def test_wait_timeout_is_a_monitor_error(self):
        assert issubclass(WaitTimeout, MonitorError)

    def test_constructor_default_timeout(self, sim_backend):
        monitor = NeverReady(backend=sim_backend, wait_timeout=10)
        errors = []

        def worker():
            try:
                monitor.await_ready()  # no per-call timeout: ctor default
            except WaitTimeout as exc:
                errors.append(exc)

        sim_backend.run([worker])
        assert len(errors) == 1

    def test_per_call_timeout_overrides_constructor(self, sim_backend):
        monitor = NeverReady(backend=sim_backend, wait_timeout=100_000)
        errors = []

        def worker():
            try:
                monitor.await_ready(timeout=5)
            except WaitTimeout as exc:
                errors.append(exc)

        sim_backend.run([worker])
        assert len(errors) == 1
        assert errors[0].timeout == 5

    def test_satisfied_wait_does_not_time_out(self, sim_backend):
        cell = Cell(backend=sim_backend)
        taken = []

        def producer():
            cell.put("payload")

        def consumer():
            taken.append(cell.take(timeout=10_000))

        sim_backend.run([producer, consumer])
        assert taken == ["payload"]
        assert cell.stats.wait_timeouts == 0

    @pytest.mark.parametrize("signalling", ["autosynch", "baseline"])
    def test_timeout_under_relay_and_broadcast_policies(self, signalling):
        backend = SimulationBackend(seed=3)
        monitor = NeverReady(backend=backend, signalling=signalling)
        errors = []

        def worker():
            try:
                monitor.await_ready(timeout=8)
            except WaitTimeout as exc:
                errors.append(exc)

        backend.run([worker])
        assert len(errors) == 1


class TestWaitUntilTimeoutThreading:
    def test_wait_until_times_out_on_real_threads(self):
        backend = ThreadingBackend()
        monitor = NeverReady(backend=backend)
        errors = []

        def worker():
            try:
                monitor.await_ready(timeout=0.1)
            except WaitTimeout as exc:
                errors.append(exc)

        backend.run([worker])
        assert len(errors) == 1
        assert monitor.stats.wait_timeouts == 1

    def test_notification_beats_timeout_on_real_threads(self):
        backend = ThreadingBackend()
        cell = Cell(backend=backend)
        taken = []

        def producer():
            cell.put("payload")

        def consumer():
            taken.append(cell.take(timeout=30.0))

        backend.run([producer, consumer])
        assert taken == ["payload"]
        assert cell.stats.wait_timeouts == 0

    def test_backend_now_is_monotonic_seconds(self):
        backend = ThreadingBackend()
        first = backend.now()
        second = backend.now()
        assert second >= first
