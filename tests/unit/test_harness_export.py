"""Unit tests for CSV export of experiment series."""

from __future__ import annotations

import csv
import io

from repro.harness import series_to_csv, write_series_csv
from repro.harness.export import CSV_COLUMNS
from repro.harness.results import ExperimentSeries, MeasurementPoint


def make_point(mechanism, threads, runtime):
    return MeasurementPoint(
        problem="demo",
        mechanism=mechanism,
        backend="simulation",
        threads=threads,
        repetitions=3,
        wall_time=runtime,
        modelled_runtime=runtime,
        context_switches=100.0 * threads,
        predicate_evaluations=7.0,
        signals=3.0,
        extra={"spurious_wakeups": 2.0},
    )


def make_series():
    series = ExperimentSeries(name="demo", x_label="# threads", backend="simulation")
    for mechanism in ("explicit", "autosynch"):
        for threads in (2, 8):
            series.add(make_point(mechanism, threads, 0.5 * threads))
    return series


class TestSeriesToCsv:
    def parse(self, text):
        return list(csv.reader(io.StringIO(text)))

    def test_header_matches_column_constant(self):
        rows = self.parse(series_to_csv(make_series()))
        assert rows[0] == list(CSV_COLUMNS)

    def test_one_row_per_point(self):
        rows = self.parse(series_to_csv(make_series()))
        assert len(rows) == 1 + 4  # header + 2 mechanisms x 2 thread counts

    def test_rows_are_grouped_by_x_value(self):
        rows = self.parse(series_to_csv(make_series()))
        threads_column = [row[2] for row in rows[1:]]
        assert threads_column == ["2", "2", "8", "8"]

    def test_values_are_rendered(self):
        rows = self.parse(series_to_csv(make_series()))
        first = dict(zip(rows[0], rows[1]))
        assert first["experiment"] == "demo"
        assert first["mechanism"] == "explicit"
        assert float(first["modelled_runtime_s"]) == 1.0
        assert float(first["context_switches"]) == 200.0

    def test_extra_metrics_are_appended(self):
        text = series_to_csv(make_series(), extra_metrics=["spurious_wakeups"])
        rows = self.parse(text)
        assert rows[0][-1] == "spurious_wakeups"
        assert rows[1][-1] == "2.000"

    def test_unknown_extra_metric_is_blank(self):
        rows = self.parse(series_to_csv(make_series(), extra_metrics=["no_such_metric"]))
        assert rows[1][-1] == ""


class TestWriteSeriesCsv:
    def test_writes_file_and_creates_directories(self, tmp_path):
        target = tmp_path / "out" / "fig99.csv"
        written = write_series_csv(make_series(), target)
        assert written == target
        assert target.exists()
        assert target.read_text(encoding="utf-8").startswith("experiment,")

    def test_cli_csv_dir_option(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        # A single tiny experiment keeps this fast; fig13 has the smallest
        # quick workload.
        code = main(["--only", "fig13", "--scale", "quick", "--csv-dir", str(tmp_path)])
        assert code == 0
        csv_path = tmp_path / "fig13.csv"
        assert csv_path.exists()
        assert "written to" in capsys.readouterr().out
