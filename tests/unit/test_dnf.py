"""Unit tests for NNF/DNF conversion."""

from __future__ import annotations

import pytest

from repro.predicates import (
    And,
    BoolConst,
    Compare,
    Name,
    Not,
    Or,
    PredicateError,
    parse_predicate,
    to_dnf,
    to_nnf,
    unparse,
)
from repro.predicates.dnf import MAX_CONJUNCTIONS, Conjunction, DNFPredicate


class TestNNF:
    def test_negated_comparison_flips_operator(self):
        expr = to_nnf(parse_predicate("not (x < 5)"))
        assert expr == Compare(">=", Name("x"), parse_predicate("5"))

    def test_de_morgan_over_and(self):
        expr = to_nnf(parse_predicate("not (a and b)"))
        assert isinstance(expr, Or)
        assert all(isinstance(op, Not) for op in expr.operands)

    def test_de_morgan_over_or(self):
        expr = to_nnf(parse_predicate("not (x < 1 or y > 2)"))
        assert isinstance(expr, And)
        assert expr.operands[0].op == ">="
        assert expr.operands[1].op == "<="

    def test_double_negation_cancels(self):
        expr = to_nnf(parse_predicate("not (not ready)"))
        assert expr == Name("ready")

    def test_negated_boolean_constant(self):
        assert to_nnf(parse_predicate("not True")) == BoolConst(False)

    def test_negation_of_plain_atom_is_kept(self):
        expr = to_nnf(parse_predicate("not busy"))
        assert expr == Not(Name("busy"))

    def test_nnf_is_negation_free_on_structure(self):
        expr = to_nnf(parse_predicate("not ((a or b) and (c or not d))"))
        # No Not node may contain boolean structure below it.
        def check(node):
            if isinstance(node, Not):
                assert not isinstance(node.operand, (And, Or, Not, Compare))
            for child in (getattr(node, "operands", ()) or ()):
                check(child)
        check(expr)


class TestDNF:
    def test_atom_is_single_conjunction(self):
        dnf = to_dnf(parse_predicate("count > 0"))
        assert len(dnf) == 1
        assert len(dnf.conjunctions[0]) == 1

    def test_conjunction_stays_single(self):
        dnf = to_dnf(parse_predicate("a and b and c"))
        assert len(dnf) == 1
        assert len(dnf.conjunctions[0]) == 3

    def test_disjunction_splits(self):
        dnf = to_dnf(parse_predicate("a or b or c"))
        assert len(dnf) == 3

    def test_distribution(self):
        dnf = to_dnf(parse_predicate("a and (b or c)"))
        assert len(dnf) == 2
        canonical = {conj.canonical() for conj in dnf}
        assert canonical == {"a and b", "a and c"}

    def test_nested_distribution(self):
        dnf = to_dnf(parse_predicate("(a or b) and (c or d)"))
        assert len(dnf) == 4

    def test_negation_pushed_before_distribution(self):
        dnf = to_dnf(parse_predicate("not (a or (x < 1))"))
        assert len(dnf) == 1
        atoms = dnf.conjunctions[0].atoms
        assert Not(Name("a")) in atoms
        assert Compare(">=", Name("x"), parse_predicate("1")) in atoms

    def test_true_atom_is_dropped_from_conjunction(self):
        dnf = to_dnf(parse_predicate("a and True"))
        assert dnf.conjunctions[0].atoms == (Name("a"),)

    def test_false_conjunction_is_dropped(self):
        dnf = to_dnf(parse_predicate("(a and False) or b"))
        assert len(dnf) == 1
        assert dnf.conjunctions[0].atoms == (Name("b"),)

    def test_trivially_true(self):
        dnf = to_dnf(parse_predicate("a or True"))
        assert dnf.is_trivially_true

    def test_trivially_false(self):
        dnf = to_dnf(parse_predicate("False or (False and a)"))
        assert dnf.is_trivially_false

    def test_duplicate_atoms_deduplicated(self):
        dnf = to_dnf(parse_predicate("a and a"))
        assert dnf.conjunctions[0].atoms == (Name("a"),)

    def test_duplicate_conjunctions_deduplicated(self):
        dnf = to_dnf(parse_predicate("(a and b) or (a and b)"))
        assert len(dnf) == 1

    def test_blowup_is_capped(self):
        # (a0 or b0) and (a1 or b1) and ... expands exponentially.
        terms = " and ".join(f"(a{i} or b{i})" for i in range(10))
        with pytest.raises(PredicateError):
            to_dnf(parse_predicate(terms))
        assert MAX_CONJUNCTIONS < 2**10

    def test_canonical_is_deterministic(self):
        first = to_dnf(parse_predicate("x > 1 or (y < 2 and z == 3)"))
        second = to_dnf(parse_predicate("x > 1 or (y < 2 and z == 3)"))
        assert first.canonical() == second.canonical()


class TestDNFDataStructures:
    def test_conjunction_to_expr_empty_is_true(self):
        assert Conjunction(()).to_expr() == BoolConst(True)

    def test_conjunction_to_expr_single_atom(self):
        assert Conjunction((Name("a"),)).to_expr() == Name("a")

    def test_dnf_to_expr_empty_is_false(self):
        assert DNFPredicate(()).to_expr() == BoolConst(False)

    def test_dnf_iteration(self):
        dnf = to_dnf(parse_predicate("a or b"))
        assert [conj.canonical() for conj in dnf] == ["a", "b"]

    def test_dnf_roundtrip_text(self):
        dnf = to_dnf(parse_predicate("a and (b or c)"))
        assert unparse(dnf.to_expr()) == dnf.canonical()
