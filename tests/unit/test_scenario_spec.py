"""Unit tests for the declarative scenario spec model and its compiler."""

from __future__ import annotations

import pytest

from repro.harness.saturation import run_workload
from repro.runtime import SimulationBackend
from repro.scenarios import (
    ActionSpec,
    InvariantSpec,
    RoleSpec,
    ScenarioError,
    ScenarioProblem,
    ScenarioSpec,
    compile_scenario_monitor,
)
from repro.scenarios.builtin import BUILTIN_SCENARIOS


def gate_spec(**overrides) -> ScenarioSpec:
    """A minimal two-role handoff scenario used across these tests."""
    fields = dict(
        name="gate_test",
        description="single-slot handoff",
        shared={"slot": 0, "put_total": 0, "got_total": 0},
        actions=(
            ActionSpec(
                name="put",
                guard="slot == 0",
                effect=(("slot", "1"), ("put_total", "put_total + 1")),
            ),
            ActionSpec(
                name="get",
                guard="slot == 1",
                effect=(("slot", "0"), ("got_total", "got_total + 1")),
            ),
        ),
        roles=(
            RoleSpec(name="putter", count=1, ops=3, actions=("put",)),
            RoleSpec(name="getter", count=1, ops=3, actions=("get",)),
        ),
        invariants=(InvariantSpec("slot_binary", "0 <= slot and slot <= 1"),),
        post=("put_total == 3", "got_total == 3", "slot == 0"),
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestValidation:
    def test_valid_spec_passes(self):
        assert gate_spec().validate() is not None

    def test_builtins_validate(self):
        for spec in BUILTIN_SCENARIOS:
            spec.validate()

    def test_unknown_action_reference(self):
        spec = gate_spec(
            roles=(RoleSpec(name="putter", count=1, ops=1, actions=("teleport",)),)
        )
        with pytest.raises(ScenarioError, match="unknown action 'teleport'"):
            spec.validate()

    def test_effect_must_target_shared_variable(self):
        spec = gate_spec(
            actions=(
                ActionSpec(name="put", effect=(("ghost", "1"),)),
                ActionSpec(name="get", guard="slot == 1", effect=(("slot", "0"),)),
            )
        )
        with pytest.raises(ScenarioError, match="not a declared shared variable"):
            spec.validate()

    def test_parameters_are_read_only(self):
        spec = gate_spec(
            params={"limit": 2},
            actions=(
                ActionSpec(name="put", effect=(("limit", "3"),)),
                ActionSpec(name="get", guard="slot == 1", effect=(("slot", "0"),)),
            ),
        )
        with pytest.raises(ScenarioError, match="read-only"):
            spec.validate()

    def test_guard_over_undeclared_name(self):
        spec = gate_spec(
            actions=(
                ActionSpec(name="put", guard="slot == phantom", effect=(("slot", "1"),)),
                ActionSpec(name="get", guard="slot == 1", effect=(("slot", "0"),)),
            )
        )
        with pytest.raises(ScenarioError, match="phantom"):
            spec.validate()

    def test_invariants_may_not_use_locals(self):
        spec = gate_spec(
            invariants=(InvariantSpec("bad", "slot == my_local"),)
        )
        with pytest.raises(ScenarioError, match="shared variables and parameters"):
            spec.validate()

    def test_reserved_names_rejected(self):
        spec = gate_spec(shared={"wait_until": 0})
        with pytest.raises(ScenarioError, match="reserved"):
            spec.validate()

    def test_syntax_errors_are_scenario_errors(self):
        spec = gate_spec(post=("put_total ==",))
        with pytest.raises(ScenarioError, match="post-condition"):
            spec.validate()

    def test_empty_scenario_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(name="empty").validate()


class TestJsonRoundTrip:
    def test_round_trip_equality(self):
        spec = gate_spec()
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_builtin_round_trip_equality(self):
        for spec in BUILTIN_SCENARIOS:
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_format_marker_is_enforced(self):
        data = gate_spec().to_dict()
        data["format"] = "something/else"
        with pytest.raises(ScenarioError, match="unsupported scenario format"):
            ScenarioSpec.from_dict(data)

    def test_from_dict_validates(self):
        data = gate_spec().to_dict()
        data["roles"][0]["actions"] = ["teleport"]
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_dict(data)


class TestCompiledMonitor:
    def test_actions_become_entry_methods(self):
        monitor_cls = compile_scenario_monitor(gate_spec())
        monitor = monitor_cls({"slot": 0, "put_total": 0, "got_total": 0})
        monitor.put()
        assert monitor.slot == 1 and monitor.put_total == 1
        monitor.get()
        assert monitor.slot == 0 and monitor.got_total == 1
        # Entry methods count as monitor entries in the stats.
        assert monitor.stats.entries == 2

    def test_initial_values_are_copied_per_instance(self):
        spec = gate_spec(shared={"slot": 0, "put_total": 0, "got_total": 0, "log": []})
        monitor_cls = compile_scenario_monitor(spec)
        state = {"slot": 0, "put_total": 0, "got_total": 0, "log": []}
        first = monitor_cls(state)
        second = monitor_cls(state)
        first.log.append("x")
        assert second.log == []

    def test_binds_capture_pre_mutation_state(self):
        spec = ScenarioSpec(
            name="ticket_test",
            shared={"next_ticket": 0, "first_seen": -1},
            actions=(
                ActionSpec(
                    name="grab",
                    binds=(("t", "next_ticket"),),
                    pre=(("next_ticket", "next_ticket + 1"),),
                    effect=(("first_seen", "t"),),
                ),
            ),
            roles=(RoleSpec(name="w", count=1, ops=1, actions=("grab",)),),
        ).validate()
        monitor = compile_scenario_monitor(spec)({"next_ticket": 0, "first_seen": -1})
        monitor.grab()
        assert monitor.next_ticket == 1
        # The bind read the ticket counter before the pre-effect bumped it.
        assert monitor.first_seen == 0

    def test_indexed_effect_targets(self):
        spec = ScenarioSpec(
            name="indexed_test",
            shared={"slots": [0, 0, 0], "writes": 0},
            actions=(
                ActionSpec(
                    name="mark",
                    effect=(("slots[k]", "slots[k] + 1"), ("writes", "writes + 1")),
                ),
            ),
            roles=(
                RoleSpec(
                    name="w", count=3, ops=1, actions=("mark",),
                    locals=(("k", "i"),),
                ),
            ),
        ).validate()
        problem = ScenarioProblem(spec)
        built = problem.build("autosynch", SimulationBackend(), threads=2, total_ops=3)
        backend = built.monitor.backend
        backend.run(built.targets, built.names)
        assert built.monitor.slots == [1, 1, 1]
        assert built.monitor.writes == 3

    def test_problem_runs_end_to_end(self):
        problem = ScenarioProblem(gate_spec())
        result = run_workload(
            problem,
            "autosynch",
            SimulationBackend(seed=1),
            threads=2,
            total_ops=6,
            verify=True,
        )
        assert result.operations == 6

    def test_unknown_param_override_is_rejected(self):
        problem = ScenarioProblem(gate_spec(params={"limit": 1}))
        with pytest.raises(ValueError, match="no parameter"):
            problem.build(
                "autosynch", SimulationBackend(), threads=2, total_ops=4, bogus=3
            )

    def test_explicit_mechanism_is_rejected(self):
        problem = ScenarioProblem(gate_spec())
        with pytest.raises(ValueError, match="does not support mechanism 'explicit'"):
            problem.build("explicit", SimulationBackend(), threads=2, total_ops=4)

    def test_post_condition_failures_surface_in_verify(self):
        problem = ScenarioProblem(gate_spec(post=("put_total == 99",)))
        with pytest.raises(AssertionError, match="post-condition"):
            run_workload(
                problem,
                "autosynch",
                SimulationBackend(seed=1),
                threads=2,
                total_ops=6,
                verify=True,
            )

    def test_oracles_come_from_invariants(self):
        problem = ScenarioProblem(gate_spec())
        spec = problem.build(
            "autosynch", SimulationBackend(), threads=2, total_ops=4
        )
        oracles = {oracle.name: oracle for oracle in problem.oracles(spec.monitor)}
        assert oracles["slot_binary"].check() is None
        spec.monitor.slot = 5
        assert "false" in oracles["slot_binary"].check()
