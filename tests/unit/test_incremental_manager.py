"""Unit tests for the condition manager's dirty-set (incremental) search."""

from __future__ import annotations

from repro.core.condition_manager import ConditionManager
from repro.core.instrumentation import MonitorStats
from repro.core.write_tracking import WriteTracker
from repro.predicates import compile_predicate

from test_condition_manager import FakeBackend, FakeMonitor


class DeclaredMonitor(FakeMonitor):
    """Monitor double declaring its state names as tracked writes (the
    scenario-compiled-monitor contract)."""

    _tracked_write_names = frozenset({"items"})


def make_manager(owner, use_tags=False, tracker=None, eval_engine="compiled"):
    backend = FakeBackend()
    stats = MonitorStats()
    manager = ConditionManager(
        owner=owner,
        backend=backend,
        lock=backend.create_lock(),
        stats=stats,
        use_tags=use_tags,
        eval_engine=eval_engine,
        write_tracker=tracker,
    )
    return manager, stats


def park(manager, source, shared, local_values=None):
    """Register *source* and add one waiter, like a thread about to block."""
    local_values = local_values or {}
    compiled = compile_predicate(source, shared, set(local_values))
    entry = manager.acquire_entry(
        compiled.globalized(local_values),
        from_shared_predicate=compiled.is_shared,
    )
    manager.add_waiter(entry)
    return entry


class TestDirtySetSearch:
    def test_false_entry_is_skipped_until_its_variable_is_written(self):
        tracker = WriteTracker()
        owner = FakeMonitor(flag=0)
        manager, stats = make_manager(owner, tracker=tracker)
        park(manager, "flag == 1", {"flag"})

        assert not manager.relay_signal()
        assert stats.predicate_evaluations == 1
        assert stats.relay_entries_skipped == 0

        # Nothing written: the pass skips the entry without evaluating.
        assert not manager.relay_signal()
        assert stats.predicate_evaluations == 1
        assert stats.relay_entries_skipped == 1

        # A write to an unrelated name does not wake the entry up either.
        tracker.bump("other")
        assert not manager.relay_signal()
        assert stats.predicate_evaluations == 1
        assert stats.relay_entries_skipped == 2

        # A write to the tracked name forces re-evaluation — and it is true.
        owner.flag = 1
        tracker.bump("flag")
        assert manager.relay_signal()
        assert stats.predicate_evaluations == 2
        assert stats.signals_sent == 1

    def test_exhaustive_manager_never_skips(self):
        owner = FakeMonitor(flag=0)
        manager, stats = make_manager(owner, tracker=None)
        park(manager, "flag == 1", {"flag"})
        assert not manager.relay_signal()
        assert not manager.relay_signal()
        assert stats.predicate_evaluations == 2
        assert stats.relay_entries_skipped == 0

    def test_interpreted_engine_falls_back_to_exhaustive(self):
        owner = FakeMonitor(flag=0)
        manager, stats = make_manager(
            owner, tracker=WriteTracker(), eval_engine="interpreted"
        )
        assert manager.incremental is False
        park(manager, "flag == 1", {"flag"})
        assert not manager.relay_signal()
        assert not manager.relay_signal()
        assert stats.predicate_evaluations == 2
        assert stats.relay_entries_skipped == 0

    def test_container_fields_are_never_marked_clean(self):
        tracker = WriteTracker()
        owner = FakeMonitor(items=[])
        manager, stats = make_manager(owner, tracker=tracker)
        park(manager, "len(items) > 0", {"items"})
        assert not manager.relay_signal()
        # A list can be mutated in place without any tracked write, so the
        # entry must be re-evaluated every pass.
        owner.items.append("x")
        assert manager.relay_signal()
        assert stats.predicate_evaluations == 2
        assert stats.relay_entries_skipped == 0

    def test_declared_tracked_names_allow_container_skipping(self):
        tracker = WriteTracker()
        owner = DeclaredMonitor(items=[])
        manager, stats = make_manager(owner, tracker=tracker)
        park(manager, "len(items) > 0", {"items"})
        assert not manager.relay_signal()
        assert not manager.relay_signal()
        assert stats.predicate_evaluations == 1
        assert stats.relay_entries_skipped == 1
        # The declared contract: every mutation is reported explicitly.
        owner.items.append("x")
        tracker.bump("items")
        assert manager.relay_signal()
        assert stats.predicate_evaluations == 2

    def test_query_predicates_are_never_skipped(self):
        class Gate:
            def is_open(self):
                return False

        tracker = WriteTracker()
        manager, stats = make_manager(FakeMonitor(gate=Gate()), tracker=tracker)
        # A method call on a shared object reads state no write to ``gate``
        # itself bounds, so the entry must be re-evaluated every pass.
        park(manager, "gate.is_open()", {"gate"})
        assert not manager.relay_signal()
        assert not manager.relay_signal()
        assert stats.predicate_evaluations == 2
        assert stats.relay_entries_skipped == 0

    def test_reactivation_resets_cleanliness(self):
        tracker = WriteTracker()
        owner = FakeMonitor(flag=0)
        manager, stats = make_manager(owner, tracker=tracker)
        entry = park(manager, "flag == 1", {"flag"})
        assert not manager.relay_signal()
        manager.remove_waiter(entry)  # deactivates; cleanliness must not leak

        owner.flag = 1  # changed while inactive, with no tracked write
        entry = park(manager, "flag == 1", {"flag"})
        assert manager.relay_signal()
        assert stats.signals_sent == 1

    def test_fifo_search_skips_and_recovers(self):
        tracker = WriteTracker()
        owner = FakeMonitor(flag=0, gate=0)
        manager, stats = make_manager(owner, tracker=tracker)
        park(manager, "flag == 1", {"flag", "gate"})
        park(manager, "gate == 1", {"flag", "gate"})

        assert not manager.relay_signal_fifo()
        assert stats.predicate_evaluations == 2
        assert not manager.relay_signal_fifo()
        assert stats.predicate_evaluations == 2
        assert stats.relay_entries_skipped == 2

        owner.gate = 1
        tracker.bump("gate")
        assert manager.relay_signal_fifo()
        assert stats.predicate_evaluations == 3  # only the dirty entry


class TestTaggedDirtySet:
    def test_tagged_entries_skip_via_version_vector(self):
        tracker = WriteTracker()
        owner = FakeMonitor(count=0, open=0)
        manager, stats = make_manager(owner, use_tags=True, tracker=tracker)
        # Two conjuncts: the equivalence tag on ``count`` finds the entry,
        # but the whole predicate is false while ``open`` is 0 — the classic
        # "tag satisfied, predicate false" shape that incremental skipping
        # prunes on repeat passes.
        park(manager, "count == 0 and open == 1", {"count", "open"})

        assert not manager.relay_signal()
        evals_after_first = stats.predicate_evaluations
        assert evals_after_first >= 1

        assert not manager.relay_signal()
        assert stats.predicate_evaluations == evals_after_first
        assert stats.relay_entries_skipped >= 1

        owner.open = 1
        tracker.bump("open")
        assert manager.relay_signal()


class TestBatchedSearch:
    def test_signal_many_uses_fused_batch_closures(self):
        tracker = WriteTracker()
        owner = FakeMonitor(count=-1)
        manager, stats = make_manager(owner, tracker=tracker)
        for i in range(10):
            park(manager, f"count > {i}", {"count"})

        assert manager.signal_many(4) == 0
        assert stats.batched_evaluations == 10
        assert stats.compiled_evaluations == 10
        assert stats.predicate_evaluations == 10

        owner.count = 5
        tracker.bump("count")
        # All ten entries re-pend (same read set); the batch finds the five
        # true ones and the limit caps the wake-ups at four.
        assert manager.signal_many(4) == 4
        assert stats.signals_sent == 4
        assert stats.batched_evaluations == 20

    def test_relay_signal_stays_per_entry(self):
        owner = FakeMonitor(count=-1)
        manager, stats = make_manager(owner, tracker=WriteTracker())
        for i in range(4):
            park(manager, f"count > {i}", {"count"})
        assert not manager.relay_signal()
        assert stats.batched_evaluations == 0

    def test_batch_matches_exhaustive_selection(self):
        owner_batched = FakeMonitor(count=2)
        manager_batched, stats_batched = make_manager(
            owner_batched, tracker=WriteTracker()
        )
        owner_plain = FakeMonitor(count=2)
        manager_plain, stats_plain = make_manager(owner_plain, tracker=None)
        for manager in (manager_batched, manager_plain):
            for i in range(6):
                park(manager, f"count > {i}", {"count"})
        assert manager_batched.signal_many(3) == manager_plain.signal_many(3) == 2
        assert stats_batched.signals_sent == stats_plain.signals_sent == 2
