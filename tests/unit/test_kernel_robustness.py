"""Kernel robustness: thread-crash abandonment, hang autopsy, self-healing hook."""

from __future__ import annotations

import threading

import pytest

from repro.faults import FaultInjector, create_fault
from repro.runtime import SimulationBackend
from repro.runtime.simulation import (
    DeadlockError,
    MonitorAbandonedError,
    SimulationError,
    SimulationHangError,
)


class TestAbandonmentDetection:
    def _crash_owner_run(self):
        """Two threads; a fault kills the lock owner, the other stays queued."""
        backend = SimulationBackend(seed=0)
        injector = FaultInjector([create_fault("thread_crash", at_step=0)])
        injector.attach(backend)
        lock = backend.create_lock(label="monitor-lock")

        def victim():
            lock.acquire()
            # The doom lands at the next primitive call; the lock is never
            # released.
            backend.yield_control()
            lock.release()

        def waiter():
            backend.yield_control()
            lock.acquire()
            lock.release()

        return backend, injector, victim, waiter

    def test_dead_lock_owner_is_classified_as_abandonment(self):
        backend, injector, victim, waiter = self._crash_owner_run()
        with pytest.raises(MonitorAbandonedError) as excinfo:
            backend.run([victim, waiter], ["victim", "waiter"])
        message = str(excinfo.value)
        assert "victim" in message
        assert injector.fired == 1

    def test_abandonment_is_not_a_deadlock(self):
        backend, _, victim, waiter = self._crash_owner_run()
        # MonitorAbandonedError must not be swallowed by handlers that catch
        # DeadlockError (it is a sibling, both SimulationError).
        assert not issubclass(MonitorAbandonedError, DeadlockError)
        assert issubclass(MonitorAbandonedError, SimulationError)
        with pytest.raises(SimulationError):
            backend.run([victim, waiter])

    def test_crash_without_contention_just_finishes(self):
        backend = SimulationBackend(seed=0)
        injector = FaultInjector([create_fault("thread_crash", at_step=0)])
        injector.attach(backend)
        lock = backend.create_lock()
        done = []

        def victim():
            lock.acquire()
            backend.yield_control()
            lock.release()

        def bystander():
            done.append(True)

        # Nobody is stuck behind the abandoned lock: the run completes.
        backend.run([victim, bystander])
        assert done == [True]
        assert injector.fired == 1


class TestHangAutopsy:
    def _hanging_run(self, run_timeout=0.5):
        backend = SimulationBackend(seed=0, run_timeout=run_timeout)
        lock = backend.create_lock()
        condition = backend.create_condition(lock, label="never-signalled")
        release = threading.Event()

        def parked():
            lock.acquire()
            condition.wait()
            lock.release()

        def stuck():
            # Blocks outside the kernel: the simulation makes no progress
            # but is not deadlocked, so only the wall-clock net catches it.
            # The short self-expiry keeps the kernel's post-abort drain
            # grace from padding the test with its full 5s.
            release.wait(timeout=run_timeout + 0.3)

        return backend, release, parked, stuck

    def test_wall_clock_hang_raises_with_autopsy(self):
        backend, release, parked, stuck = self._hanging_run()
        try:
            with pytest.raises(SimulationHangError) as excinfo:
                backend.run([parked, stuck], ["parked-thread", "stuck-thread"])
        finally:
            release.set()
        message = str(excinfo.value)
        assert "parked-thread" in message
        assert "parked" in message

    def test_hang_autopsy_includes_recent_decisions(self):
        backend, release, parked, stuck = self._hanging_run()
        try:
            with pytest.raises(SimulationHangError) as excinfo:
                backend.run([parked, stuck])
        finally:
            release.set()
        assert "step" in str(excinfo.value)

    def test_hang_inspector_contributes_detail(self):
        backend, release, parked, stuck = self._hanging_run()
        backend.set_hang_inspector(lambda: "three widgets still pending")
        try:
            with pytest.raises(SimulationHangError) as excinfo:
                backend.run([parked, stuck])
        finally:
            release.set()
        assert "three widgets still pending" in str(excinfo.value)

    def test_hang_error_is_a_simulation_error(self):
        # Callers that catch SimulationError for "run did not finish" keep
        # working when the wall-clock net fires.
        assert issubclass(SimulationHangError, SimulationError)


class TestDeadlockRecoveryHook:
    def test_recovery_hook_wakes_a_waiter_instead_of_deadlocking(self):
        backend = SimulationBackend(seed=0)
        lock = backend.create_lock()
        condition = backend.create_condition(lock)
        woken = []

        def waiter():
            lock.acquire()
            condition.wait()
            woken.append(True)
            lock.release()

        backend.set_deadlock_recovery(lambda: condition)
        backend.run([waiter])
        assert woken == [True]

    def test_recovery_hook_returning_none_still_deadlocks(self):
        backend = SimulationBackend(seed=0)
        lock = backend.create_lock()
        condition = backend.create_condition(lock)

        def waiter():
            lock.acquire()
            condition.wait()
            lock.release()

        backend.set_deadlock_recovery(lambda: None)
        with pytest.raises(DeadlockError):
            backend.run([waiter])

    def test_recovery_attempts_are_bounded(self):
        from repro.runtime.simulation.kernel import RECOVERY_ATTEMPT_LIMIT

        backend = SimulationBackend(seed=0)
        lock = backend.create_lock()
        condition = backend.create_condition(lock)
        attempts = []

        def waiter():
            lock.acquire()
            while True:
                # Every recovery wake loops straight back into waiting: a
                # recovery hook that never fixes anything must not spin the
                # kernel forever.
                condition.wait()

        def hook():
            attempts.append(True)
            return condition

        backend.set_deadlock_recovery(hook)
        with pytest.raises(DeadlockError):
            backend.run([waiter])
        assert len(attempts) == RECOVERY_ATTEMPT_LIMIT
