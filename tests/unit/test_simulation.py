"""Unit tests for the deterministic simulation backend."""

from __future__ import annotations

import pytest

from repro.runtime import DeadlockError, SimulationBackend
from repro.runtime.simulation import SimulationError, SimulationLimitError


class TestBasicExecution:
    def test_run_executes_all_targets(self, sim_backend):
        results = []
        sim_backend.run([lambda: results.append(1), lambda: results.append(2)])
        assert sorted(results) == [1, 2]

    def test_run_with_no_targets(self, sim_backend):
        sim_backend.run([])

    def test_exceptions_propagate(self, sim_backend):
        def boom():
            raise ValueError("inside simulation")

        with pytest.raises(ValueError, match="inside simulation"):
            sim_backend.run([boom])

    def test_backend_is_reusable_across_runs(self, sim_backend):
        counter = []
        sim_backend.run([lambda: counter.append(1)])
        sim_backend.run([lambda: counter.append(2)])
        assert counter == [1, 2]

    def test_run_while_running_is_rejected(self, sim_backend):
        def nested():
            sim_backend.run([lambda: None])

        with pytest.raises(SimulationError):
            sim_backend.run([nested])

    def test_current_name_and_id(self, sim_backend):
        seen = []
        sim_backend.run([lambda: seen.append((sim_backend.current_name(), sim_backend.current_id()))],
                        ["worker-a"])
        assert seen == [("worker-a", 0)]

    def test_primitives_outside_simulation_are_rejected(self, sim_backend):
        lock = sim_backend.create_lock()
        with pytest.raises(SimulationError):
            lock.acquire()

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            SimulationBackend(policy="priority")


class TestLocks:
    def test_mutual_exclusion(self, any_sim_backend):
        backend = any_sim_backend
        lock = backend.create_lock()
        inside = []
        overlaps = []

        def worker():
            for _ in range(20):
                lock.acquire()
                inside.append(1)
                if len(inside) > 1:
                    overlaps.append(True)
                backend.yield_control()
                inside.pop()
                lock.release()

        backend.run([worker, worker, worker])
        assert not overlaps

    def test_reacquiring_held_lock_is_an_error(self, sim_backend):
        lock = sim_backend.create_lock()

        def worker():
            lock.acquire()
            lock.acquire()

        with pytest.raises(SimulationError):
            sim_backend.run([worker])

    def test_releasing_unheld_lock_is_an_error(self, sim_backend):
        lock = sim_backend.create_lock()
        with pytest.raises(SimulationError):
            sim_backend.run([lock.release])

    def test_lock_contention_is_counted(self, sim_backend):
        lock = sim_backend.create_lock()

        def worker():
            lock.acquire()
            sim_backend.yield_control()
            lock.release()

        sim_backend.run([worker, worker])
        assert sim_backend.metrics.lock_contentions >= 1
        assert sim_backend.metrics.lock_acquisitions == 2


class TestConditions:
    def test_wait_requires_the_lock(self, sim_backend):
        lock = sim_backend.create_lock()
        condition = sim_backend.create_condition(lock)
        with pytest.raises(SimulationError):
            sim_backend.run([condition.wait])

    def test_notify_requires_the_lock(self, sim_backend):
        lock = sim_backend.create_lock()
        condition = sim_backend.create_condition(lock)
        with pytest.raises(SimulationError):
            sim_backend.run([condition.notify])

    def test_notify_wakes_one_waiter(self, sim_backend):
        lock = sim_backend.create_lock()
        condition = sim_backend.create_condition(lock)
        woken = []

        def waiter(tag):
            def body():
                lock.acquire()
                condition.wait()
                woken.append(tag)
                lock.release()
            return body

        def notifier():
            lock.acquire()
            condition.notify()
            lock.release()
            lock.acquire()
            condition.notify()
            lock.release()

        sim_backend.run([waiter("a"), waiter("b"), notifier])
        assert sorted(woken) == ["a", "b"]
        assert sim_backend.metrics.notifies == 2
        assert sim_backend.metrics.notified_threads == 2

    def test_notify_all_wakes_everyone(self, sim_backend):
        lock = sim_backend.create_lock()
        condition = sim_backend.create_condition(lock)
        woken = []

        def waiter(tag):
            def body():
                lock.acquire()
                condition.wait()
                woken.append(tag)
                lock.release()
            return body

        def notifier():
            lock.acquire()
            condition.notify_all()
            lock.release()

        sim_backend.run([waiter(1), waiter(2), waiter(3), notifier])
        assert sorted(woken) == [1, 2, 3]
        assert sim_backend.metrics.notify_alls == 1
        assert sim_backend.metrics.notified_threads == 3

    def test_condition_requires_simulation_lock(self, sim_backend):
        with pytest.raises(TypeError):
            sim_backend.create_condition(object())

    def test_waiter_count(self, sim_backend):
        lock = sim_backend.create_lock()
        condition = sim_backend.create_condition(lock)
        counts = []

        def waiter():
            lock.acquire()
            condition.wait()
            lock.release()

        def observer():
            counts.append(condition.waiter_count())
            lock.acquire()
            condition.notify()
            lock.release()

        sim_backend.run([waiter, observer])
        assert counts == [1]


class TestDeterminismAndPolicies:
    def _producer_consumer_counts(self, seed, policy):
        backend = SimulationBackend(seed=seed, policy=policy)
        lock = backend.create_lock()
        condition = backend.create_condition(lock)
        queue = []

        def producer():
            for index in range(50):
                lock.acquire()
                queue.append(index)
                condition.notify()
                lock.release()

        def consumer():
            for _ in range(50):
                lock.acquire()
                while not queue:
                    condition.wait()
                queue.pop(0)
                lock.release()

        backend.run([producer, consumer])
        return backend.metrics.snapshot()

    def test_same_seed_same_schedule(self):
        first = self._producer_consumer_counts(11, "random")
        second = self._producer_consumer_counts(11, "random")
        assert first == second

    def test_different_seeds_may_differ_but_stay_correct(self):
        # Not asserting inequality (schedules can coincide), only that both
        # runs complete and count something.
        for seed in (1, 2, 3):
            snapshot = self._producer_consumer_counts(seed, "random")
            assert snapshot["context_switches"] > 0

    def test_fifo_policy_is_deterministic(self):
        assert self._producer_consumer_counts(0, "fifo") == self._producer_consumer_counts(
            99, "fifo"
        )


class TestFailureModes:
    def test_deadlock_detection(self, sim_backend):
        first = sim_backend.create_lock()
        second = sim_backend.create_lock()

        def one():
            first.acquire()
            sim_backend.yield_control()
            second.acquire()

        def two():
            second.acquire()
            sim_backend.yield_control()
            first.acquire()

        with pytest.raises(DeadlockError) as excinfo:
            sim_backend.run([one, two], ["alpha", "beta"])
        message = str(excinfo.value)
        assert "alpha" in message and "beta" in message

    def test_lost_wakeup_results_in_deadlock_error(self, sim_backend):
        lock = sim_backend.create_lock()
        condition = sim_backend.create_condition(lock)

        def waiter():
            lock.acquire()
            condition.wait()
            lock.release()

        with pytest.raises(DeadlockError):
            sim_backend.run([waiter])

    def test_step_limit(self):
        backend = SimulationBackend(seed=0, max_steps=10)

        def chatty():
            for _ in range(100):
                backend.yield_control()

        with pytest.raises(SimulationLimitError):
            backend.run([chatty, chatty])

    def test_context_switches_counted(self, sim_backend):
        def worker():
            for _ in range(5):
                sim_backend.yield_control()

        sim_backend.run([worker, worker])
        assert sim_backend.metrics.context_switches >= 10
