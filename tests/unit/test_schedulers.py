"""Unit tests for the pluggable scheduler registry and schedule traces."""

from __future__ import annotations

import pytest

from repro.runtime.simulation import (
    FifoScheduler,
    PrefixScheduler,
    RandomScheduler,
    ReplayScheduler,
    SchedulePoint,
    ScheduleDivergenceError,
    ScheduleTrace,
    Scheduler,
    SimulationBackend,
    available_schedulers,
    create_scheduler,
    describe_scheduler,
    get_scheduler,
    register_scheduler,
    unregister_scheduler,
)


class TestRegistry:
    def test_builtins_are_registered(self):
        names = available_schedulers()
        assert "fifo" in names and "random" in names
        assert "prefix" in names and "replay" in names

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError) as excinfo:
            get_scheduler("priority")
        message = str(excinfo.value)
        assert "priority" in message
        for name in available_schedulers():
            assert name in message

    def test_kernel_constructor_validates_through_registry(self):
        # The kernel's error must have the same UX as --list-schedulers:
        # name the offender and enumerate what is actually registered.
        with pytest.raises(ValueError) as excinfo:
            SimulationBackend(policy="priority")
        message = str(excinfo.value)
        assert "priority" in message
        assert "fifo" in message and "random" in message

    def test_kernel_accepts_instances_and_classes(self):
        assert SimulationBackend(policy=FifoScheduler).policy == "fifo"
        assert SimulationBackend(policy=RandomScheduler(seed=3)).policy == "random"
        assert SimulationBackend(policy=PrefixScheduler((1, 0))).policy == "prefix"

    def test_register_and_unregister_custom_scheduler(self):
        class LastScheduler(Scheduler):
            name = "last_test"
            description = "always runs the last runnable thread"

            def choose(self, runnable):
                return len(runnable) - 1

        register_scheduler(LastScheduler)
        try:
            assert "last_test" in available_schedulers()
            backend = SimulationBackend(policy="last_test")
            assert backend.policy == "last_test"
        finally:
            unregister_scheduler("last_test")
        assert "last_test" not in available_schedulers()
        with pytest.raises(ValueError):
            unregister_scheduler("last_test")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            class Clash(Scheduler):
                name = "fifo"

                def choose(self, runnable):  # pragma: no cover
                    return 0

            register_scheduler(Clash)

    def test_describe(self):
        assert "round-robin" in describe_scheduler("fifo")
        # Constructing "replay" needs a trace; describe falls back to the
        # class description instead of failing.
        assert describe_scheduler("replay")

    def test_create_scheduler_rejects_garbage(self):
        with pytest.raises(TypeError):
            create_scheduler(42)

    def test_replay_by_name_needs_a_trace(self):
        with pytest.raises(ValueError, match="ScheduleTrace"):
            create_scheduler("replay")


def _two_yielders(backend):
    """A tiny workload with real scheduling decisions."""

    def worker():
        for _ in range(3):
            backend.yield_control()

    return [worker, worker], ["alpha", "beta"]


class TestTraceRecording:
    def test_no_trace_by_default(self, sim_backend):
        targets, names = _two_yielders(sim_backend)
        sim_backend.run(targets, names)
        assert sim_backend.schedule_trace is None

    def test_trace_records_every_decision(self):
        backend = SimulationBackend(record_trace=True)
        targets, names = _two_yielders(backend)
        backend.run(targets, names)
        trace = backend.schedule_trace
        assert len(trace) > 0
        for point in trace:
            assert point.runnable == tuple(sorted(point.runnable))
            assert point.chosen in point.runnable
            assert point.reason
        # The first decision starts the run; every chosen index is valid.
        assert trace[0].reason == "start"
        assert all(0 <= c < p.branching for c, p in zip(trace.choices(), trace))

    def test_trace_resets_between_runs(self):
        backend = SimulationBackend(record_trace=True)
        backend.run([lambda: None], ["only"])
        first = backend.schedule_trace
        assert len(first) == 1
        backend.run([lambda: None, lambda: None])
        second = backend.schedule_trace
        assert second is not first
        assert len(second) == 2

    def test_trace_json_roundtrip(self):
        backend = SimulationBackend(seed=5, policy="random", record_trace=True)
        targets, names = _two_yielders(backend)
        backend.run(targets, names)
        trace = backend.schedule_trace
        restored = ScheduleTrace.from_json(trace.to_json())
        assert restored == trace
        assert restored.digest() == trace.digest()

    def test_digest_distinguishes_schedules(self):
        def run_with(prefix):
            backend = SimulationBackend(
                policy=PrefixScheduler(prefix), record_trace=True
            )
            targets, names = _two_yielders(backend)
            backend.run(targets, names)
            return backend.schedule_trace

        assert run_with((0,)).digest() != run_with((1,)).digest()


class TestPrefixScheduler:
    def test_prefix_forces_the_other_thread_first(self):
        order = []

        def make(tag):
            def worker():
                order.append(tag)

            return worker

        backend = SimulationBackend(policy=PrefixScheduler((1,)))
        backend.run([make("a"), make("b")], ["a", "b"])
        assert order[0] == "b"

    def test_default_continuation_is_smallest_tid(self):
        order = []

        def make(tag):
            def worker():
                order.append(tag)

            return worker

        backend = SimulationBackend(policy=PrefixScheduler(()))
        backend.run([make("a"), make("b"), make("c")])
        assert order == ["a", "b", "c"]

    def test_out_of_range_prefix_diverges(self):
        backend = SimulationBackend(policy=PrefixScheduler((7,)))
        with pytest.raises(ScheduleDivergenceError):
            backend.run([lambda: None, lambda: None])


class TestReplayScheduler:
    def _record(self, seed):
        backend = SimulationBackend(seed=seed, policy="random", record_trace=True)
        targets, names = _two_yielders(backend)
        backend.run(targets, names)
        return backend.schedule_trace, backend.metrics.snapshot()

    def test_replay_reproduces_trace_and_metrics(self):
        trace, metrics = self._record(seed=17)
        replay = SimulationBackend(
            policy=ReplayScheduler(trace), record_trace=True
        )
        targets, names = _two_yielders(replay)
        replay.run(targets, names)
        assert replay.schedule_trace == trace
        assert replay.schedule_trace.digest() == trace.digest()
        assert replay.metrics.snapshot() == metrics

    def test_replay_against_different_program_diverges(self):
        trace, _ = self._record(seed=17)
        replay = SimulationBackend(policy=ReplayScheduler(trace))
        # Three threads instead of two: the runnable sets cannot match.
        with pytest.raises(ScheduleDivergenceError):
            replay.run([lambda: None, lambda: None, lambda: None])

    def test_replay_past_end_of_trace_diverges(self):
        trace, _ = self._record(seed=17)
        short = ScheduleTrace(list(trace)[:1])
        replay = SimulationBackend(policy=ReplayScheduler(short))
        targets, names = _two_yielders(replay)
        with pytest.raises(ScheduleDivergenceError):
            replay.run(targets, names)

    def test_constructor_requires_trace(self):
        with pytest.raises(ValueError):
            ReplayScheduler()


class TestSchedulePoint:
    def test_roundtrip_and_choice_index(self):
        point = SchedulePoint(step=3, runnable=(1, 4, 6), chosen=4, reason="yield")
        assert point.choice_index == 1
        assert point.branching == 3
        assert SchedulePoint.from_dict(point.to_dict()) == point


class TestLockLabels:
    def test_label_appears_in_block_reason_and_deadlock(self):
        backend = SimulationBackend()
        first = backend.create_lock(label="alpha-lock")
        second = backend.create_lock(label="beta-lock")

        def one():
            first.acquire()
            backend.yield_control()
            second.acquire()

        def two():
            second.acquire()
            backend.yield_control()
            first.acquire()

        from repro.runtime.simulation import DeadlockError

        with pytest.raises(DeadlockError) as excinfo:
            backend.run([one, two], ["t-one", "t-two"])
        message = str(excinfo.value)
        assert "waiting for lock beta-lock" in message
        assert "waiting for lock alpha-lock" in message
