"""Unit tests for the per-relay-pass EvalContext memoization.

The key soundness/performance contract: within one relay search pass the
monitor lock is held, so one context may serve every shared read from a
cache — a batch of N entries over the same shared expression costs one
read — but the cache must never survive into the next pass, where state
may have changed.
"""

from __future__ import annotations

import pytest

from repro.core.condition_manager import ConditionManager
from repro.core.instrumentation import MonitorStats
from repro.predicates import EvalContext, compile_predicate
from repro.predicates.ast_nodes import Name, Scope
from repro.runtime import ThreadingBackend


class CountingState:
    """State object that counts every shared-variable read."""

    def __init__(self, **values):
        self.__dict__["_values"] = dict(values)
        self.__dict__["reads"] = {}

    def __getattr__(self, name):
        values = self.__dict__["_values"]
        if name in values:
            reads = self.__dict__["reads"]
            reads[name] = reads.get(name, 0) + 1
            return values[name]
        raise AttributeError(name)

    def set(self, name, value):
        self.__dict__["_values"][name] = value


# ---------------------------------------------------------------------------
# EvalContext in isolation
# ---------------------------------------------------------------------------


class TestEvalContext:
    def test_read_shared_is_memoized(self):
        state = CountingState(count=7)
        stats = MonitorStats()
        ctx = EvalContext(state, stats=stats)
        for _ in range(5):
            assert ctx.read_shared(state, "count") == 7
        assert state.reads == {"count": 1}
        assert stats.shared_read_cache_hits == 4

    def test_fresh_context_rereads(self):
        state = CountingState(count=7)
        EvalContext(state).read_shared(state, "count")
        EvalContext(state).read_shared(state, "count")
        assert state.reads == {"count": 2}

    def test_evaluate_shared_is_memoized(self):
        state = CountingState(count=7)
        stats = MonitorStats()
        ctx = EvalContext(state, stats=stats)
        expr = Name("count", Scope.SHARED)
        assert ctx.evaluate_shared(expr, "count") == 7
        assert ctx.evaluate_shared(expr, "count") == 7
        assert state.reads == {"count": 1}
        assert stats.shared_expr_cache_hits == 1

    def test_cached_value_is_served_even_if_state_mutates_mid_pass(self):
        # Nothing mutates state mid-pass in the real runtime (the lock is
        # held); this pins down that the cache, not the state, answers.
        state = CountingState(count=1)
        ctx = EvalContext(state)
        assert ctx.read_shared(state, "count") == 1
        state.set("count", 99)
        assert ctx.read_shared(state, "count") == 1
        assert EvalContext(state).read_shared(state, "count") == 99

    @pytest.mark.parametrize("engine", ["compiled", "interpreted"])
    def test_holds_reads_through_the_cache(self, engine):
        state = CountingState(count=7)
        stats = MonitorStats()
        ctx = EvalContext(state, engine=engine, stats=stats)
        form = compile_predicate("count > 0", {"count"}).globalized()
        for _ in range(4):
            assert ctx.holds(form)
        assert state.reads == {"count": 1}
        if engine == "compiled":
            assert stats.compiled_evaluations == 4
            assert stats.interpreted_evaluations == 0
        else:
            assert stats.interpreted_evaluations == 4
            assert stats.compiled_evaluations == 0


# ---------------------------------------------------------------------------
# The condition manager's relay passes
# ---------------------------------------------------------------------------


def make_manager(owner, use_tags, eval_engine="compiled"):
    backend = ThreadingBackend()
    lock = backend.create_lock()
    stats = MonitorStats()
    manager = ConditionManager(
        owner=owner,
        backend=backend,
        lock=lock,
        stats=stats,
        use_tags=use_tags,
        eval_engine=eval_engine,
    )
    return manager, stats, lock


def add_waiting_entry(manager, source, local_values=None):
    local_values = local_values or {}
    compiled = compile_predicate(source, {"count"}, set(local_values))
    entry = manager.acquire_entry(
        compiled.globalized(local_values), from_shared_predicate=compiled.is_shared
    )
    manager.add_waiter(entry)
    return entry


@pytest.mark.parametrize("eval_engine", ["compiled", "interpreted"])
@pytest.mark.parametrize("use_tags", [True, False])
def test_one_shared_read_per_relay_pass(use_tags, eval_engine):
    """N waiting predicates over the same shared variable cost one read."""
    state = CountingState(count=0)
    manager, _, lock = make_manager(state, use_tags, eval_engine)
    for threshold in (10, 20, 30):
        add_waiting_entry(manager, "count >= n", {"n": threshold})

    lock.acquire()
    try:
        # All predicates false: the search is exhaustive over all 3 entries.
        assert manager.signal_many(3) == 0
        assert state.reads == {"count": 1}
        # A second pass gets a fresh context: exactly one more read.
        assert manager.signal_many(3) == 0
        assert state.reads == {"count": 2}
    finally:
        lock.release()


@pytest.mark.parametrize("eval_engine", ["compiled", "interpreted"])
def test_relay_batch_wakes_all_with_one_read(eval_engine):
    state = CountingState(count=100)
    manager, stats, lock = make_manager(state, True, eval_engine)
    entries = [
        add_waiting_entry(manager, "count >= n", {"n": threshold})
        for threshold in (10, 20, 30)
    ]
    lock.acquire()
    try:
        assert manager.signal_many(3) == 3
    finally:
        lock.release()
    assert all(entry.pending_signals == 1 for entry in entries)
    # One raw read served the tag expression and all three evaluations.
    assert state.reads == {"count": 1}
    assert stats.shared_read_cache_hits + stats.shared_expr_cache_hits > 0


def test_find_missed_waiter_uses_its_own_context():
    state = CountingState(count=0)
    manager, _, lock = make_manager(state, use_tags=False)
    add_waiting_entry(manager, "count >= n", {"n": 5})
    lock.acquire()
    try:
        assert manager.relay_signal() is False
        reads_after_relay = state.reads["count"]
        # The validate-mode recheck runs in a fresh pass: it must re-read.
        assert manager.find_missed_waiter() is None
        assert state.reads["count"] == reads_after_relay + 1
        # State change between passes is observed (no cross-pass leak).
        state.set("count", 7)
        assert manager.find_missed_waiter() is not None
    finally:
        lock.release()


def test_fifo_relay_memoizes_too():
    state = CountingState(count=50)
    manager, _, lock = make_manager(state, use_tags=False)
    for threshold in (10, 20):
        add_waiting_entry(manager, "count >= n", {"n": threshold})
    lock.acquire()
    try:
        assert manager.relay_signal_fifo() is True
    finally:
        lock.release()
    assert state.reads == {"count": 1}


def test_context_engine_follows_the_manager_knob():
    state = CountingState(count=1)
    manager, stats, lock = make_manager(state, True, eval_engine="interpreted")
    add_waiting_entry(manager, "count >= n", {"n": 1})
    lock.acquire()
    try:
        assert manager.relay_signal() is True
    finally:
        lock.release()
    assert stats.interpreted_evaluations > 0
    assert stats.compiled_evaluations == 0
