"""Unit tests for the problem monitors' sequential behaviour and validation.

These exercise each monitor class directly (single thread, no blocking), so
failures point at the problem logic rather than at the signalling machinery.
"""

from __future__ import annotations

import pytest

from repro.problems import (
    PROBLEMS,
    AutoBarberShop,
    AutoBoundedBuffer,
    AutoDiningTable,
    AutoParameterizedBoundedBuffer,
    AutoReadersWriters,
    AutoRoundRobin,
    AutoWaterFactory,
    ExplicitBoundedBuffer,
    ExplicitDiningTable,
    ExplicitParameterizedBoundedBuffer,
    ExplicitRoundRobin,
    get_problem,
)
from repro.runtime import SimulationBackend


class TestRegistry:
    def test_all_seven_problems_registered(self):
        assert set(PROBLEMS) >= {
            "bounded_buffer",
            "sleeping_barber",
            "h2o",
            "round_robin",
            "readers_writers",
            "dining_philosophers",
            "parameterized_bounded_buffer",
        }

    def test_builtin_scenarios_are_registered_problems(self):
        assert set(PROBLEMS) >= {
            "barrier",
            "fifo_semaphore",
            "resource_pool",
            "traffic_intersection",
        }

    def test_get_problem_error_lists_registered_problems(self):
        # Same UX as the policy/executor/scheduler registries: unknown names
        # raise a ValueError that lists what *is* registered.
        with pytest.raises(ValueError) as excinfo:
            get_problem("towers_of_hanoi")
        message = str(excinfo.value)
        assert "towers_of_hanoi" in message
        assert "bounded_buffer" in message and "registered problems" in message

    def test_problem_metadata(self):
        assert get_problem("round_robin").uses_complex_predicates
        assert not get_problem("bounded_buffer").uses_complex_predicates
        for problem in PROBLEMS.values():
            assert problem.description

    def test_build_rejects_unknown_mechanism(self):
        backend = SimulationBackend()
        with pytest.raises(ValueError):
            get_problem("bounded_buffer").build("psychic", backend, threads=2, total_ops=10)


class TestBoundedBuffer:
    def test_fifo_order(self):
        buffer = AutoBoundedBuffer(capacity=4)
        for value in range(3):
            buffer.put(value)
        assert [buffer.take() for _ in range(3)] == [0, 1, 2]

    def test_counts_are_tracked(self):
        buffer = AutoBoundedBuffer(capacity=4)
        buffer.put("x")
        assert buffer.count == 1 and buffer.total_put == 1
        buffer.take()
        assert buffer.count == 0 and buffer.total_taken == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            AutoBoundedBuffer(capacity=0)
        with pytest.raises(ValueError):
            ExplicitBoundedBuffer(capacity=-1)

    def test_explicit_version_matches(self):
        buffer = ExplicitBoundedBuffer(capacity=2)
        buffer.put(1)
        buffer.put(2)
        assert buffer.take() == 1
        assert buffer.take() == 2


class TestParameterizedBoundedBuffer:
    def test_batched_put_and_take(self):
        buffer = AutoParameterizedBoundedBuffer(capacity=16)
        buffer.put(list(range(5)))
        assert buffer.take(3) == [0, 1, 2]
        assert buffer.count == 2

    def test_oversized_requests_rejected(self):
        buffer = AutoParameterizedBoundedBuffer(capacity=4)
        with pytest.raises(ValueError):
            buffer.put(list(range(5)))
        with pytest.raises(ValueError):
            buffer.take(5)

    def test_explicit_oversized_requests_rejected(self):
        buffer = ExplicitParameterizedBoundedBuffer(capacity=4)
        with pytest.raises(ValueError):
            buffer.put(list(range(5)))
        with pytest.raises(ValueError):
            buffer.take(5)


class TestRoundRobin:
    def test_turn_advances_modulo_thread_count(self):
        monitor = AutoRoundRobin(3)
        for expected_turn, thread_id in zip((1, 2, 0), (0, 1, 2)):
            monitor.access(thread_id)
            assert monitor.turn == expected_turn
        assert monitor.order_violations == 0

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            AutoRoundRobin(0)
        with pytest.raises(ValueError):
            ExplicitRoundRobin(0)


class TestReadersWriters:
    def test_readers_may_overlap(self):
        monitor = AutoReadersWriters()
        monitor.start_read()
        monitor.start_read()
        assert monitor.active_readers == 2
        monitor.end_read()
        monitor.end_read()
        assert monitor.reads_done == 2
        assert monitor.violations == 0

    def test_writer_is_exclusive_when_alone(self):
        monitor = AutoReadersWriters()
        monitor.start_write()
        assert monitor.active_writers == 1
        monitor.end_write()
        assert monitor.writes_done == 1
        assert monitor.serving == 1


class TestDiningPhilosophers:
    def test_pick_up_and_put_down(self):
        table = AutoDiningTable(4)
        table.pick_up(1)
        assert table.chopsticks == [1, 0, 0, 1]
        table.put_down(1)
        assert table.chopsticks == [1, 1, 1, 1]
        assert table.meals == 1
        assert table.violations == 0

    def test_invalid_table_size(self):
        with pytest.raises(ValueError):
            AutoDiningTable(1)
        with pytest.raises(ValueError):
            ExplicitDiningTable(1)

    def test_neighbours_wrap_around(self):
        table = AutoDiningTable(3)
        table.pick_up(2)  # uses chopsticks 2 and 0
        assert table.chopsticks == [0, 1, 0]
        table.put_down(2)


class TestBarberShop:
    def test_single_customer_flow(self):
        shop = AutoBarberShop(chairs=2, num_customers=1, backend=SimulationBackend())
        # Sequential check of the explicit version instead (the automatic one
        # needs a barber thread); the state machine is identical.
        from repro.problems.sleeping_barber import ExplicitBarberShop

        explicit = ExplicitBarberShop(chairs=2, num_customers=1)
        assert explicit.waiting == 0
        assert not explicit.chair_occupied

    def test_invalid_chair_count(self):
        with pytest.raises(ValueError):
            AutoBarberShop(chairs=0)


class TestWaterFactory:
    def test_two_hydrogens_then_oxygen(self):
        backend = SimulationBackend(seed=1)
        factory = AutoWaterFactory(backend=backend)
        finished = []

        def hydrogen():
            finished.append(factory.hydrogen_ready())

        def oxygen():
            factory.oxygen_ready()
            factory.shutdown()

        backend.run([hydrogen, hydrogen, oxygen])
        assert factory.molecules == 1
        assert factory.hydrogen_bonded == 2
        assert finished == [True, True]

    def test_shutdown_releases_waiting_hydrogen(self):
        backend = SimulationBackend(seed=1)
        factory = AutoWaterFactory(backend=backend)
        outcomes = []

        def hydrogen():
            outcomes.append(factory.hydrogen_ready())

        backend.run([hydrogen, factory.shutdown])
        assert outcomes == [False]
        assert factory.hydrogen_waiting == 0
