"""Unit tests for the AST transformer (offline preprocessor path)."""

from __future__ import annotations

import ast

import pytest

from repro.preprocessor import PreprocessorError, transform_class_source, transform_module_source
from repro.preprocessor.analyze import local_names_in_expression


class TestLocalNameAnalysis:
    def parse_expr(self, source):
        return ast.parse(source, mode="eval").body

    def test_bare_names_are_captured(self):
        assert local_names_in_expression(self.parse_expr("count >= num")) == ["count", "num"]

    def test_self_attributes_are_not_captured(self):
        assert local_names_in_expression(self.parse_expr("self.count >= num")) == ["num"]

    def test_builtin_calls_are_not_captured(self):
        assert local_names_in_expression(self.parse_expr("len(self.items) < n")) == ["n"]

    def test_builtin_name_used_as_value_is_captured(self):
        # ``len`` not being called means it is a plain local variable here.
        assert local_names_in_expression(self.parse_expr("self.count > len")) == ["len"]

    def test_order_is_first_use_and_deduplicated(self):
        names = local_names_in_expression(self.parse_expr("b + a > b"))
        assert names == ["b", "a"]

    def test_literal_keywords_are_ignored(self):
        assert local_names_in_expression(self.parse_expr("self.value is None")) == []


SIMPLE_CLASS = '''
@autosynch
class Box:
    """A one-slot box."""

    def __init__(self, start):
        self.value = start

    def swap(self, new_value):
        waituntil(self.value is not None)
        old, self.value = self.value, new_value
        return old
'''


class TestClassTransformation:
    def test_base_class_is_added(self):
        result = transform_class_source(SIMPLE_CLASS)
        assert "class Box(AutoSynchMonitor):" in result

    def test_decorator_is_removed(self):
        result = transform_class_source(SIMPLE_CLASS)
        assert "@autosynch" not in result

    def test_waituntil_is_rewritten(self):
        result = transform_class_source(SIMPLE_CLASS)
        assert "self.wait_until('self.value is not None')" in result
        assert "waituntil" not in result

    def test_monitor_init_is_injected(self):
        result = transform_class_source(SIMPLE_CLASS)
        assert "AutoSynchMonitor.__init__(self, **self._autosynch_options)" in result

    def test_docstring_is_preserved(self):
        result = transform_class_source(SIMPLE_CLASS)
        assert "A one-slot box." in result

    def test_options_attribute_is_emitted(self):
        result = transform_class_source(SIMPLE_CLASS)
        assert "_autosynch_options = {}" in result

    def test_decorator_options_are_baked_in(self):
        source = SIMPLE_CLASS.replace("@autosynch", "@autosynch(signalling='baseline')")
        result = transform_class_source(source)
        assert "_autosynch_options = {'signalling': 'baseline'}" in result

    def test_class_without_init_gets_one(self):
        source = """
@autosynch
class Latch:
    def release(self):
        self.open = True

    def await_open(self):
        waituntil(self.open)
"""
        result = transform_class_source(source)
        assert "def __init__(self):" in result
        assert "AutoSynchMonitor.__init__" in result

    def test_locals_are_captured_as_keyword_arguments(self):
        source = """
@autosynch
class Buffer:
    def take(self, amount):
        waituntil(self.count >= amount)
        self.count -= amount
"""
        result = transform_class_source(source)
        assert "self.wait_until('self.count >= amount', amount=amount)" in result

    def test_result_is_valid_python(self):
        compile(transform_class_source(SIMPLE_CLASS), "<generated>", "exec")

    def test_transformation_is_idempotent_on_output(self):
        # The generated code contains no waituntil statements, so feeding it
        # back through the class transformer (as a non-decorated class) only
        # re-adds the options attribute consistently.
        first = transform_class_source(SIMPLE_CLASS)
        assert "wait_until" in first


class TestClassTransformationErrors:
    def test_waituntil_as_expression_is_rejected(self):
        source = """
@autosynch
class Bad:
    def method(self):
        x = waituntil(self.ready)
"""
        with pytest.raises(PreprocessorError):
            transform_class_source(source)

    def test_waituntil_with_wrong_arity_is_rejected(self):
        source = """
@autosynch
class Bad:
    def method(self):
        waituntil(self.ready, self.other)
"""
        with pytest.raises(PreprocessorError):
            transform_class_source(source)

    def test_non_literal_decorator_option_is_rejected(self):
        source = SIMPLE_CLASS.replace("@autosynch", "@autosynch(backend=make_backend())")
        with pytest.raises(PreprocessorError):
            transform_class_source(source)

    def test_missing_decorator_without_override_is_rejected(self):
        from repro.preprocessor.transformer import transform_class_def

        tree = ast.parse("class Plain:\n    pass\n")
        with pytest.raises(PreprocessorError):
            transform_class_def(tree.body[0])

    def test_multiple_classes_in_one_source_are_rejected(self):
        with pytest.raises(PreprocessorError):
            transform_class_source(SIMPLE_CLASS + "\n\nclass Another:\n    pass\n")


MODULE_SOURCE = '''
"""Module docstring."""
from __future__ import annotations
from repro.preprocessor import autosynch, waituntil


def helper():
    return 1


@autosynch
class Gate:
    def wait_open(self):
        waituntil(self.is_open)

    def open(self):
        self.is_open = True


class Unrelated:
    pass
'''


class TestModuleTransformation:
    def test_import_of_base_class_is_added_after_future_imports(self):
        result = transform_module_source(MODULE_SOURCE)
        lines = result.splitlines()
        future_index = next(i for i, line in enumerate(lines) if "__future__" in line)
        import_index = next(
            i for i, line in enumerate(lines) if "from repro.core.monitor import" in line
        )
        assert import_index == future_index + 1

    def test_preprocessor_imports_are_pruned(self):
        result = transform_module_source(MODULE_SOURCE)
        assert "repro.preprocessor" not in result

    def test_only_decorated_classes_are_transformed(self):
        result = transform_module_source(MODULE_SOURCE)
        assert "class Gate(AutoSynchMonitor):" in result
        assert "class Unrelated:" in result

    def test_functions_are_preserved(self):
        result = transform_module_source(MODULE_SOURCE)
        assert "def helper():" in result

    def test_module_without_autosynch_classes_is_unchanged(self):
        source = "x = 1\n\n\ndef f():\n    return x\n"
        assert transform_module_source(source) == source

    def test_generated_module_executes_and_waits(self):
        result = transform_module_source(MODULE_SOURCE)
        namespace = {}
        exec(compile(result, "<generated-module>", "exec"), namespace)
        gate_cls = namespace["Gate"]
        gate = gate_cls()
        gate.is_open = False
        gate.open()
        gate.wait_open()  # is_open is already true, so this returns at once

    def test_custom_decorator_and_waituntil_names(self):
        source = """
from mylib import monitor, block_until


@monitor
class Gate:
    def wait_open(self):
        block_until(self.is_open)
"""
        result = transform_module_source(
            source, decorator_name="monitor", waituntil_name="block_until"
        )
        assert "class Gate(AutoSynchMonitor):" in result
        assert "self.wait_until('self.is_open')" in result
