"""Unit tests for monitor statistics and the profiling stopwatch."""

from __future__ import annotations

import time

from repro.core.instrumentation import MonitorStats, Stopwatch


class TestMonitorStats:
    def test_counters_start_at_zero(self):
        stats = MonitorStats()
        assert stats.entries == 0
        assert stats.predicate_evaluations == 0
        assert stats.await_time == 0.0

    def test_snapshot_contains_all_counters(self):
        stats = MonitorStats()
        stats.entries = 3
        stats.relay_signal_calls = 2
        snapshot = stats.snapshot()
        assert snapshot["entries"] == 3
        assert snapshot["relay_signal_calls"] == 2
        assert "profiling" not in snapshot

    def test_reset_zeroes_everything_but_keeps_profiling_flag(self):
        stats = MonitorStats(profiling=True)
        stats.entries = 5
        stats.await_time = 1.5
        stats.reset()
        assert stats.entries == 0
        assert stats.await_time == 0.0
        assert stats.profiling is True

    def test_merge_accumulates(self):
        first = MonitorStats()
        second = MonitorStats()
        first.entries = 2
        first.await_time = 0.5
        second.entries = 3
        second.await_time = 0.25
        first.merge(second)
        assert first.entries == 5
        assert first.await_time == 0.75

    def test_merge_does_not_modify_other(self):
        first = MonitorStats()
        second = MonitorStats()
        second.entries = 3
        first.merge(second)
        assert second.entries == 3


class TestStopwatch:
    def test_time_bucket_accumulates_when_profiling(self):
        stats = MonitorStats(profiling=True)
        with stats.time_bucket("relay_signal_time"):
            time.sleep(0.002)
        with stats.time_bucket("relay_signal_time"):
            time.sleep(0.002)
        assert stats.relay_signal_time >= 0.003

    def test_time_bucket_is_noop_without_profiling(self):
        stats = MonitorStats(profiling=False)
        with stats.time_bucket("relay_signal_time"):
            time.sleep(0.002)
        assert stats.relay_signal_time == 0.0

    def test_stopwatch_direct_use(self):
        stats = MonitorStats(profiling=True)
        watch = Stopwatch(stats, "lock_time")
        with watch:
            pass
        assert stats.lock_time >= 0.0

    def test_different_buckets_are_independent(self):
        stats = MonitorStats(profiling=True)
        with stats.time_bucket("await_time"):
            pass
        assert stats.tag_manager_time == 0.0
