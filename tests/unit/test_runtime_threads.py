"""Unit tests for the real-thread backend."""

from __future__ import annotations

import pytest

from repro.runtime import ThreadingBackend


class TestLockAndCondition:
    def test_lock_acquire_release(self, threading_backend):
        lock = threading_backend.create_lock()
        lock.acquire()
        lock.release()
        assert threading_backend.metrics.lock_acquisitions == 1

    def test_lock_context_manager(self, threading_backend):
        lock = threading_backend.create_lock()
        with lock:
            pass
        assert threading_backend.metrics.lock_acquisitions == 1

    def test_condition_requires_matching_lock_type(self, threading_backend):
        with pytest.raises(TypeError):
            threading_backend.create_condition(object())

    def test_notify_with_no_waiters_counts_zero_notified(self, threading_backend):
        lock = threading_backend.create_lock()
        condition = threading_backend.create_condition(lock)
        with lock:
            condition.notify()
        assert threading_backend.metrics.notifies == 1
        assert threading_backend.metrics.notified_threads == 0

    def test_waiter_count_tracks_waiters(self, threading_backend):
        lock = threading_backend.create_lock()
        condition = threading_backend.create_condition(lock)
        seen = []

        def waiter():
            with lock:
                seen.append(condition.waiter_count())
                condition.wait()

        def waker():
            # Spin until the waiter is registered, then wake it.
            while condition.waiter_count() == 0:
                pass
            with lock:
                condition.notify()

        threading_backend.run([waiter, waker])
        assert seen == [0]
        assert condition.waiter_count() == 0
        assert threading_backend.metrics.condition_waits == 1
        assert threading_backend.metrics.notified_threads == 1


class TestRunAndMetrics:
    def test_run_executes_all_targets(self, threading_backend):
        results = []
        threading_backend.run([lambda: results.append(1), lambda: results.append(2)])
        assert sorted(results) == [1, 2]
        assert threading_backend.metrics.threads_spawned == 2

    def test_run_uses_supplied_names(self, threading_backend):
        import threading as _threading

        names = []
        threading_backend.run(
            [lambda: names.append(_threading.current_thread().name)], ["my-worker"]
        )
        assert names == ["my-worker"]

    def test_run_propagates_worker_exception(self, threading_backend):
        def boom():
            raise RuntimeError("worker failed")

        with pytest.raises(RuntimeError, match="worker failed"):
            threading_backend.run([boom])

    def test_reset_metrics(self, threading_backend):
        threading_backend.run([lambda: None])
        threading_backend.reset_metrics()
        assert threading_backend.metrics.threads_spawned == 0
        assert threading_backend.metrics.context_switches == 0

    def test_current_id_differs_between_threads(self, threading_backend):
        ids = []
        threading_backend.run([lambda: ids.append(threading_backend.current_id())] * 2)
        assert len(ids) == 2

    def test_metrics_snapshot_shape(self, threading_backend):
        snapshot = threading_backend.metrics.snapshot()
        assert set(snapshot) >= {
            "context_switches",
            "condition_waits",
            "notifies",
            "notify_alls",
            "lock_acquisitions",
        }
