"""Unit tests for globalization (Definition 2) and constant folding."""

from __future__ import annotations

import pytest

from repro.predicates import (
    BoolConst,
    Compare,
    Const,
    Name,
    PredicateError,
    Scope,
    classify,
    globalize,
    is_shared_predicate,
    parse_predicate,
    unparse,
)
from repro.predicates.globalization import fold_constants


def globalized(source, shared, local_values):
    expr = classify(parse_predicate(source), shared, set(local_values))
    return globalize(expr, local_values)


class TestGlobalize:
    def test_local_variable_becomes_constant(self):
        result = globalized("count >= num", {"count"}, {"num": 48})
        assert unparse(result) == "count >= 48"

    def test_result_is_a_shared_predicate(self):
        result = globalized("count >= num", {"count"}, {"num": 48})
        assert is_shared_predicate(result)

    def test_shared_predicate_is_unchanged(self):
        result = globalized("count > 0", {"count"}, {})
        assert unparse(result) == "count > 0"

    def test_papers_threshold_example(self):
        # x + b > 2y + a with a=11, b=2 has the tag key x - 2y > 9; here we
        # just check the frozen form evaluates identically.
        result = globalized("x + b > 2 * y + a", {"x", "y"}, {"a": 11, "b": 2})
        assert unparse(result) == "x + 2 > 2 * y + 11"

    def test_boolean_local(self):
        result = globalized("ready == flag", {"ready"}, {"flag": True})
        assert isinstance(result, Compare)
        assert result.right == BoolConst(True)

    def test_string_local(self):
        result = globalized("state == wanted", {"state"}, {"wanted": "open"})
        assert result.right == Const("open")

    def test_list_local_is_frozen_to_tuple(self):
        result = globalized("len(batch) <= capacity", {"capacity"}, {"batch": [1, 2, 3]})
        # len((1, 2, 3)) folds to 3.
        assert unparse(result) == "3 <= capacity"

    def test_missing_local_value_raises(self):
        expr = classify(parse_predicate("count >= num"), {"count"}, {"num"})
        with pytest.raises(PredicateError):
            globalize(expr, {})

    def test_unsupported_local_type_raises(self):
        expr = classify(parse_predicate("count >= num"), {"count"}, {"num"})
        with pytest.raises(PredicateError):
            globalize(expr, {"num": object()})

    def test_local_expression_is_folded(self):
        result = globalized("count >= a + b", {"count"}, {"a": 40, "b": 8})
        assert unparse(result) == "count >= 48"

    def test_globalization_does_not_touch_shared_names(self):
        result = globalized("count + step <= capacity", {"count", "capacity"}, {"step": 4})
        names = {node.ident for node in _names(result)}
        assert names == {"count", "capacity"}


def _names(expr):
    from repro.predicates import walk

    return [node for node in walk(expr) if isinstance(node, Name)]


class TestFoldConstants:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("1 + 2", "3"),
            ("2 * 3 + 1", "7"),
            ("10 // 3", "3"),
            ("10 % 3", "1"),
            ("-(2 + 3)", "-5"),
            ("len((1, 2, 3))", "3"),
            ("min(4, 2)", "2"),
            ("max(4, 2)", "4"),
            ("abs(-5)", "5"),
            ("1 < 2", "True"),
            ("2 == 3", "False"),
            ("not (1 < 2)", "False"),
        ],
    )
    def test_constant_expressions_fold(self, source, expected):
        folded = fold_constants(parse_predicate(source))
        assert unparse(folded) == expected

    def test_partial_folding(self):
        folded = fold_constants(parse_predicate("count + (2 * 3)"))
        assert unparse(folded) == "count + 6"

    def test_division_by_zero_is_left_unfolded(self):
        folded = fold_constants(parse_predicate("x > 1 // 0"))
        assert unparse(folded) == "x > 1 // 0"

    def test_subscript_of_constant_tuple_folds(self):
        folded = fold_constants(parse_predicate("(10, 20, 30)[1]"))
        assert unparse(folded) == "20"

    def test_folding_preserves_non_constant_structure(self):
        source = "count >= limit and not busy"
        folded = fold_constants(parse_predicate(source))
        assert unparse(folded) == source

    def test_boolean_and_with_constants_is_not_collapsed(self):
        # fold_constants only folds leaf arithmetic; boolean simplification is
        # DNF's job, so the structure is preserved here.
        folded = fold_constants(parse_predicate("ready and True"))
        assert unparse(folded) == "ready and True"
