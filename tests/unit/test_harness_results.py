"""Unit tests for run results, aggregation, the cost model and reporting."""

from __future__ import annotations

import pytest

from repro.harness import (
    CostModel,
    DEFAULT_COST_MODEL,
    ExperimentSeries,
    MeasurementPoint,
    RunResult,
    aggregate_runs,
    format_series_table,
    format_table,
    series_to_rows,
)
from repro.harness.profiling import (
    breakdown_rows,
    cpu_usage_breakdown,
    eval_engine_breakdown,
    eval_engine_rows,
    modelled_breakdown_from_counters,
)


def make_run(wall_time=1.0, context_switches=100, evaluations=50, threads=4, **overrides):
    backend_metrics = {
        "context_switches": context_switches,
        "notified_threads": overrides.pop("notified_threads", 10),
    }
    monitor_stats = {
        "entries": overrides.pop("entries", 200),
        "predicate_evaluations": evaluations,
        "signals_sent": overrides.pop("signals_sent", 20),
        "signal_alls_sent": overrides.pop("signal_alls_sent", 0),
        "waits": overrides.pop("waits", 30),
        "relay_signal_calls": overrides.pop("relay_signal_calls", 40),
        "spurious_wakeups": overrides.pop("spurious_wakeups", 2),
        "wakeups": overrides.pop("wakeups", 28),
    }
    return RunResult(
        problem=overrides.pop("problem", "bounded_buffer"),
        mechanism=overrides.pop("mechanism", "autosynch"),
        backend=overrides.pop("backend", "simulation"),
        threads=threads,
        wall_time=wall_time,
        operations=overrides.pop("operations", 1000),
        backend_metrics=backend_metrics,
        monitor_stats=monitor_stats,
    )


class TestRunResult:
    def test_convenience_properties(self):
        run = make_run(context_switches=123, evaluations=7, signals_sent=4, signal_alls_sent=2)
        assert run.context_switches == 123
        assert run.predicate_evaluations == 7
        assert run.signals == 6

    def test_metric_lookup(self):
        run = make_run(wall_time=2.5)
        assert run.metric("wall_time") == 2.5
        assert run.metric("context_switches") == 100
        assert run.metric("waits") == 30
        with pytest.raises(KeyError):
            run.metric("nonexistent")

    def test_modelled_runtime_is_positive_and_scales(self):
        small = make_run(context_switches=10)
        large = make_run(context_switches=10_000)
        assert 0 < small.modelled_runtime() < large.modelled_runtime()


class TestCostModel:
    def test_default_model_weights_context_switches_most(self):
        model = DEFAULT_COST_MODEL
        assert model.context_switch_us > model.predicate_evaluation_us

    def test_modelled_runtime_formula(self):
        model = CostModel(
            context_switch_us=1.0,
            monitor_entry_us=0.0,
            predicate_evaluation_us=0.0,
            signal_us=0.0,
            wait_us=0.0,
        )
        run = make_run(context_switches=2_000_000)
        assert run.modelled_runtime(model) == pytest.approx(2.0)

    def test_custom_model_changes_result(self):
        run = make_run()
        cheap = CostModel(context_switch_us=0.1)
        expensive = CostModel(context_switch_us=100.0)
        assert run.modelled_runtime(cheap) < run.modelled_runtime(expensive)


class TestAggregation:
    def test_empty_aggregation_rejected(self):
        with pytest.raises(ValueError):
            aggregate_runs([])

    def test_mismatched_configurations_rejected(self):
        with pytest.raises(ValueError):
            aggregate_runs([make_run(), make_run(mechanism="explicit")])

    def test_drop_extremes_follows_paper_protocol(self):
        runs = [make_run(wall_time=t) for t in (5.0, 1.0, 2.0, 3.0, 100.0)]
        point = aggregate_runs(runs, drop_extremes=True)
        # Best (1.0) and worst (100.0) dropped; mean of 2, 3, 5.
        assert point.wall_time == pytest.approx((2.0 + 3.0 + 5.0) / 3)
        assert point.repetitions == 3

    def test_extremes_kept_when_disabled(self):
        runs = [make_run(wall_time=t) for t in (1.0, 2.0, 3.0)]
        point = aggregate_runs(runs, drop_extremes=False)
        assert point.wall_time == pytest.approx(2.0)
        assert point.repetitions == 3

    def test_fewer_than_three_runs_keeps_everything(self):
        runs = [make_run(wall_time=t) for t in (1.0, 9.0)]
        point = aggregate_runs(runs, drop_extremes=True)
        assert point.wall_time == pytest.approx(5.0)

    def test_extra_counters_are_averaged(self):
        runs = [make_run(spurious_wakeups=2), make_run(spurious_wakeups=4)]
        point = aggregate_runs(runs, drop_extremes=False)
        assert point.extra["spurious_wakeups"] == pytest.approx(3.0)
        assert point.extra["backend_context_switches"] == pytest.approx(100.0)

    def test_point_metric_lookup(self):
        point = aggregate_runs([make_run()], drop_extremes=False)
        assert point.metric("context_switches") == 100
        assert point.metric("waits") == 30
        with pytest.raises(KeyError):
            point.metric("unknown_metric")


class TestSeries:
    def build_series(self):
        series = ExperimentSeries(name="demo", x_label="# threads", backend="simulation")
        for mechanism, factor in (("explicit", 3.0), ("autosynch", 1.0)):
            for threads in (2, 8):
                run = make_run(
                    wall_time=factor * threads, mechanism=mechanism, threads=threads
                )
                series.add(aggregate_runs([run], drop_extremes=False))
        return series

    def test_mechanisms_and_x_values(self):
        series = self.build_series()
        assert list(series.mechanisms()) == ["explicit", "autosynch"]
        assert series.x_values() == [2, 8]

    def test_point_lookup(self):
        series = self.build_series()
        point = series.point_for("explicit", 8)
        assert point is not None and point.wall_time == pytest.approx(24.0)
        assert series.point_for("explicit", 99) is None

    def test_series_to_rows(self):
        rows = series_to_rows(self.build_series(), "wall_time")
        assert rows[0][0] == 2
        assert rows[1][0] == 8
        assert len(rows[0]) == 3

    def test_format_series_table(self):
        text = format_series_table(self.build_series(), "wall_time", title="demo table")
        assert "demo table" in text
        assert "# threads" in text
        assert "explicit" in text and "autosynch" in text


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(["name", "value"], [["alpha", 1], ["b", 123456]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "123,456" in text

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["one"], [["a", "b"]])

    def test_float_formatting(self):
        text = format_table(["x"], [[0.000123], [1234567.0]])
        assert "1.230e-04" in text
        assert "1.235e+06" in text


class TestProfilingBreakdown:
    def test_modelled_breakdown_used_without_measured_buckets(self):
        run = make_run()
        breakdown = cpu_usage_breakdown(run)
        assert breakdown.total > 0
        assert breakdown.relay_signal_time > 0

    def test_measured_buckets_take_precedence(self):
        run = make_run()
        stats = dict(run.monitor_stats)
        stats.update({"await_time": 0.5, "lock_time": 0.1, "relay_signal_time": 0.2,
                      "tag_manager_time": 0.05})
        measured = RunResult(
            problem=run.problem,
            mechanism=run.mechanism,
            backend="threading",
            threads=run.threads,
            wall_time=1.0,
            operations=run.operations,
            backend_metrics=run.backend_metrics,
            monitor_stats=stats,
        )
        breakdown = cpu_usage_breakdown(measured)
        assert breakdown.await_time == pytest.approx(0.5)
        assert breakdown.others_time == pytest.approx(1.0 - 0.85)

    def test_share_sums_to_one(self):
        breakdown = cpu_usage_breakdown(make_run())
        total_share = sum(
            breakdown.share(bucket)
            for bucket in ("await", "lock", "relay_signal", "tag_manager", "others")
        )
        assert total_share == pytest.approx(1.0)

    def test_breakdown_rows_shape(self):
        rows = breakdown_rows([cpu_usage_breakdown(make_run())])
        assert len(rows) == 1
        # mechanism + 5 buckets x (value, percent) + total
        assert len(rows[0]) == 1 + 5 * 2 + 1

    def test_modelled_breakdown_from_counters_direct(self):
        breakdown = modelled_breakdown_from_counters(
            "autosynch", {"waits": 10, "predicate_evaluations": 100}, {"context_switches": 50}
        )
        assert breakdown.mechanism == "autosynch"
        assert breakdown.await_time > 0

    def test_eval_engine_breakdown_attributes_the_engines(self):
        run = make_run()
        run.monitor_stats["compiled_evaluations"] = 40
        run.monitor_stats["interpreted_evaluations"] = 10
        run.monitor_stats["shared_read_cache_hits"] = 25
        run.monitor_stats["compiled_eval_time"] = 0.25
        breakdown = eval_engine_breakdown(run)
        assert breakdown.total_evaluations == 50
        assert breakdown.compiled_share == pytest.approx(0.8)
        assert breakdown.compiled_eval_time == pytest.approx(0.25)
        rows = eval_engine_rows([breakdown])
        assert rows[0][0] == "autosynch"
        assert "80.0%" in rows[0]

    def test_eval_engine_breakdown_handles_missing_counters(self):
        breakdown = eval_engine_breakdown(make_run())
        assert breakdown.total_evaluations == 0
        assert breakdown.compiled_share == 0.0
