"""The asyncio backend and the coroutine monitor driver.

Coroutine waiters go through :mod:`repro.core.async_driver` —
``monitor_entry`` / ``wait_until_async`` / ``run_action`` — which re-drives
the signalling policy's own ``wait_steps`` generator with awaitable
primitives, so relay semantics are shared with the blocking path by
construction.  These tests exercise the asyncio-specific surface: task
waiters, the coroutine/thread hybrid run, failure propagation, the
loop-thread blocking guard, and timeouts inside coroutines.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import AutoSynchMonitor, WaitTimeout
from repro.core.async_driver import monitor_entry, run_action, wait_until_async
from repro.core.errors import MonitorUsageError
from repro.runtime import AsyncioBackend, ThreadingBackend


class Counter(AutoSynchMonitor):
    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.count = 0

    def bump(self):
        self.count += 1

    def wait_for(self, threshold, timeout=None):
        self.wait_until("count >= threshold", threshold=threshold, timeout=timeout)


class TestBackendBasics:
    def test_spawn_requires_run_for_coroutines(self):
        backend = AsyncioBackend()

        async def body():
            return None

        with pytest.raises(RuntimeError):
            backend.spawn(body)

    def test_sync_targets_run_as_bridged_threads(self):
        backend = AsyncioBackend()
        seen = []

        def body():
            seen.append(threading.get_ident())

        backend.run([body, body])
        assert len(seen) == 2

    def test_coroutine_failure_propagates(self):
        backend = AsyncioBackend()

        async def body():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            backend.run([body])

    def test_current_id_distinguishes_tasks(self):
        backend = AsyncioBackend()
        ids = []

        async def body():
            ids.append(backend.current_id())

        backend.run([body, body])
        assert len(ids) == 2
        assert ids[0] is not ids[1]

    def test_blocking_acquire_on_loop_thread_is_rejected(self):
        """A coroutine must never block the loop: a *contended* sync acquire
        from the loop thread raises instead of deadlocking the loop."""
        backend = AsyncioBackend()
        lock = backend.create_lock()
        errors = []

        async def holder():
            await lock.acquire_async()

        async def blocker():
            try:
                lock.acquire()
            except RuntimeError as error:
                errors.append(error)
            finally:
                if lock.locked:
                    lock.release()

        backend.run([holder, blocker])
        assert len(errors) == 1
        assert "event-loop thread" in str(errors[0])

    def test_wrong_lock_type_rejected(self):
        backend = AsyncioBackend()
        with pytest.raises(TypeError):
            backend.create_condition(threading.Lock())


class TestCoroutineMonitorDriver:
    def test_coroutine_waiters_relay_in_order(self):
        backend = AsyncioBackend()
        monitor = Counter(backend=backend, signalling="autosynch")
        observed = []

        def waiter(threshold):
            async def body():
                async with monitor_entry(monitor, "wait_for"):
                    await wait_until_async(
                        monitor, "count >= threshold", threshold=threshold
                    )
                    observed.append(threshold)

            return body

        async def bumper():
            for _ in range(10):
                async with monitor_entry(monitor, "bump"):
                    monitor.count += 1

        backend.run([waiter(t) for t in range(1, 6)] + [bumper])
        assert sorted(observed) == [1, 2, 3, 4, 5]
        assert monitor.stats.waits >= 1

    def test_coroutines_and_threads_share_one_monitor(self):
        """Bridged sync threads and coroutine tasks interleave on the same
        monitor: threads block in wait_until, tasks await wait_until_async."""
        backend = AsyncioBackend()
        monitor = Counter(backend=backend, signalling="autosynch")
        woken = []

        def sync_waiter():
            monitor.wait_for(3)
            woken.append("thread")

        async def task_waiter():
            async with monitor_entry(monitor, "wait_for"):
                await wait_until_async(monitor, "count >= 3")
            woken.append("task")

        async def bumper():
            for _ in range(3):
                async with monitor_entry(monitor, "bump"):
                    monitor.count += 1

        backend.run([sync_waiter, task_waiter, bumper])
        assert sorted(woken) == ["task", "thread"]

    def test_wait_timeout_in_coroutine(self):
        backend = AsyncioBackend()
        monitor = Counter(backend=backend, signalling="autosynch")
        outcomes = []

        async def body():
            async with monitor_entry(monitor, "wait_for"):
                try:
                    await wait_until_async(monitor, "count >= 1", timeout=0.2)
                except WaitTimeout:
                    outcomes.append("timeout")

        backend.run([body])
        assert outcomes == ["timeout"]
        assert monitor.stats.wait_timeouts == 1

    def test_notification_beats_timeout_in_coroutine(self):
        backend = AsyncioBackend()
        monitor = Counter(backend=backend, signalling="autosynch")
        outcomes = []

        async def waiter():
            async with monitor_entry(monitor, "wait_for"):
                await wait_until_async(monitor, "count >= 1", timeout=30.0)
                outcomes.append(monitor.count)

        async def bumper():
            async with monitor_entry(monitor, "bump"):
                monitor.count += 1

        backend.run([waiter, bumper])
        assert outcomes == [1]
        assert monitor.stats.wait_timeouts == 0

    def test_monitor_entry_requires_async_primitives(self):
        monitor = Counter(backend=ThreadingBackend())

        async def body():
            async with monitor_entry(monitor):
                pass  # pragma: no cover - never entered

        import asyncio

        with pytest.raises(MonitorUsageError, match="asyncio"):
            asyncio.run(body())


class _Plain(AutoSynchMonitor):
    pass


class TestRunAction:
    def _scenario_monitor(self, backend):
        from repro.harness.service_load import _build_scenario_monitor

        monitor, _ = _build_scenario_monitor("fifo_semaphore", 2, backend, "autosynch")
        return monitor

    def test_run_action_drives_compiled_scenarios(self):
        backend = AsyncioBackend()
        monitor = self._scenario_monitor(backend)

        def worker(index):
            async def body():
                await run_action(monitor, "acquire")
                await run_action(monitor, "release")

            return body

        backend.run([worker(index) for index in range(6)])
        assert monitor.acquired == 6
        assert monitor.released == 6
        assert monitor.available == 2  # permits conserved

    def test_unknown_action_lists_actions(self):
        backend = AsyncioBackend()
        monitor = self._scenario_monitor(backend)

        async def body():
            with pytest.raises(MonitorUsageError, match="acquire"):
                await run_action(monitor, "frobnicate")

        backend.run([body])

    def test_non_scenario_monitor_rejected(self):
        backend = AsyncioBackend()
        monitor = _Plain(backend=backend)

        async def body():
            with pytest.raises(MonitorUsageError, match="scenario"):
                await run_action(monitor, "anything")

        backend.run([body])
