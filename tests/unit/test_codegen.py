"""Unit tests for the predicate codegen engine (IR -> native closures)."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.core import AutoSynchMonitor
from repro.predicates import (
    Compare,
    Const,
    EvaluationError,
    Expr,
    Name,
    Scope,
    compile_predicate,
    evaluate,
)
from repro.predicates.codegen import (
    DEFAULT_ENGINE,
    ENGINES,
    compile_expr,
    compiled_source,
    validate_engine,
)
from repro.predicates.evaluator import _EMPTY_LOCALS, read_shared
from repro.runtime import SimulationBackend


class State:
    """Monitor-shaped state with containers, nesting and query methods."""

    def __init__(self):
        self.count = 3
        self.capacity = 8
        self.items = [10, 20, 30]
        self.table = {"key": 5}
        self.child = type("Child", (), {"depth": 2})()

    def ready(self):
        return True

    def above(self, threshold):
        return self.count > threshold


PARITY_CASES = [
    ("count < capacity", (), {}),
    ("count >= n and count % 2 == 1", ("n",), {"n": 3}),
    ("len(items) == 3 or count == 0", (), {}),
    ("items[0] + items[1] == 30", (), {}),
    ("table['key'] > 4", (), {}),
    ("child.depth * 2 == 4", (), {}),
    ("self.ready()", (), {}),
    ("self.above(n)", ("n",), {"n": 2}),
    ("-count < 0", (), {}),
    ("min(count, capacity) == 3", (), {}),
    ("not (count == capacity)", (), {}),
    ("count / 3 == 1.0", (), {}),
]


@pytest.mark.parametrize("source, local_names, local_values", PARITY_CASES)
def test_compiled_matches_interpreter(source, local_names, local_values):
    state = State()
    shared = {"count", "capacity", "items", "table", "child"}
    compiled = compile_predicate(source, shared, set(local_names))
    fn = compile_expr(compiled.expr)
    assert fn is not None
    assert fn(state, read_shared, local_values) == evaluate(
        compiled.expr, state, local_values
    )
    assert compiled.compiled_evaluate(state, local_values) == compiled.evaluate(
        state, local_values
    )


@pytest.mark.parametrize(
    "source, exc",
    [
        ("missing > 0", EvaluationError),  # absent shared variable
        ("items[9] == 1", EvaluationError),  # out-of-range index
        ("count // 0 == 1", EvaluationError),  # division by zero
        ("self.no_such_method()", EvaluationError),  # missing query method
        ("child.no_attr == 1", AttributeError),  # raw attribute miss
    ],
)
def test_error_class_parity(source, exc):
    state = State()
    shared = {"count", "capacity", "items", "table", "child", "missing"}
    compiled = compile_predicate(source, shared, ())
    fn = compile_expr(compiled.expr)
    assert fn is not None
    with pytest.raises(exc):
        evaluate(compiled.expr, state)
    with pytest.raises(exc):
        fn(state, read_shared, _EMPTY_LOCALS)


def test_mapping_state_supported():
    expr = Compare(">", Name("count", Scope.SHARED), Const(1))
    fn = compile_expr(expr)
    assert fn({"count": 2}, read_shared, _EMPTY_LOCALS) is True
    with pytest.raises(EvaluationError):
        fn({}, read_shared, _EMPTY_LOCALS)


def test_unsupported_node_falls_back_to_interpreter():
    @dataclass(frozen=True)
    class Exotic(Expr):
        pass

    assert compile_expr(Exotic()) is None
    assert compiled_source(Exotic()) is None
    # The high-level wrappers must transparently fall back, not crash.
    with pytest.raises(EvaluationError):
        evaluate(Exotic(), State())


def test_compilation_is_memoized_on_the_tree():
    first = Compare("<", Name("count", Scope.SHARED), Const(5))
    second = Compare("<", Name("count", Scope.SHARED), Const(5))
    assert compile_expr(first) is compile_expr(second)


def test_globalized_predicate_caches_its_closure():
    compiled = compile_predicate("count > n", {"count"}, {"n"})
    form = compiled.globalized({"n": 2})
    assert form.compiled_fn() is form.compiled_fn()
    class S:
        count = 3
    assert form.compiled_holds(S()) is True
    assert form.holds(S()) is True


def test_compiled_source_is_inspectable():
    expr = Compare("<", Name("count", Scope.SHARED), Const(5))
    source = compiled_source(expr)
    assert "def __cg_predicate(state, __cg_read, __cg_locals):" in source
    assert "__cg_read(state, 'count')" in source


def test_validate_engine():
    assert validate_engine("compiled") == "compiled"
    assert validate_engine("interpreted") == "interpreted"
    assert DEFAULT_ENGINE in ENGINES
    with pytest.raises(ValueError):
        validate_engine("jit")


class _Buffer(AutoSynchMonitor):
    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.count = 0
        self.capacity = 2

    def put(self):
        self.wait_until("count < capacity")
        self.count += 1

    def take(self):
        self.wait_until("count > 0")
        self.count -= 1


@pytest.mark.parametrize("engine", ENGINES)
def test_monitor_engine_attribution(engine):
    backend = SimulationBackend(seed=3)
    buffer = _Buffer(backend=backend, eval_engine=engine)
    assert buffer.eval_engine == engine

    def producer():
        for _ in range(8):
            buffer.put()

    def consumer():
        for _ in range(8):
            buffer.take()

    backend.run([producer, consumer])
    stats = buffer.stats
    assert buffer.count == 0
    if engine == "compiled":
        assert stats.compiled_evaluations > 0
        assert stats.interpreted_evaluations == 0
    else:
        assert stats.interpreted_evaluations > 0
        assert stats.compiled_evaluations == 0
    # Engine attribution splits predicate_evaluations exactly.
    assert (
        stats.compiled_evaluations + stats.interpreted_evaluations
        == stats.predicate_evaluations
    )


def test_monitor_rejects_unknown_engine():
    with pytest.raises(ValueError):
        _Buffer(backend=SimulationBackend(seed=0), eval_engine="jit")
