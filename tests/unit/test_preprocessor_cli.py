"""Unit tests for the autosynch-pp command-line front end."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.preprocessor.cli import main

EXAMPLE = """
from repro.preprocessor import autosynch, waituntil


@autosynch
class Turnstile:
    def __init__(self):
        self.unlocked = False

    def push(self):
        waituntil(self.unlocked)
        self.unlocked = False

    def insert_coin(self):
        self.unlocked = True
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "turnstile.py"
    path.write_text(EXAMPLE, encoding="utf-8")
    return path


class TestCLI:
    def test_prints_translation_to_stdout(self, source_file, capsys):
        assert main([str(source_file)]) == 0
        output = capsys.readouterr().out
        assert "class Turnstile(AutoSynchMonitor):" in output
        assert "wait_until" in output

    def test_writes_output_file(self, source_file, tmp_path):
        output_path = tmp_path / "generated.py"
        assert main([str(source_file), "-o", str(output_path)]) == 0
        generated = output_path.read_text(encoding="utf-8")
        assert "class Turnstile(AutoSynchMonitor):" in generated
        compile(generated, str(output_path), "exec")

    def test_generated_module_runs(self, source_file, tmp_path):
        output_path = tmp_path / "generated.py"
        main([str(source_file), "-o", str(output_path)])
        namespace = {}
        exec(compile(output_path.read_text(encoding="utf-8"), "generated", "exec"), namespace)
        turnstile = namespace["Turnstile"]()
        turnstile.insert_coin()
        turnstile.push()

    def test_missing_input_file(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.py")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_translation_error_reports_and_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "from repro.preprocessor import autosynch, waituntil\n"
            "@autosynch\n"
            "class Bad:\n"
            "    def go(self):\n"
            "        return waituntil(self.ready)\n",
            encoding="utf-8",
        )
        assert main([str(bad)]) == 1
        assert "bad.py" in capsys.readouterr().err

    def test_custom_names(self, tmp_path, capsys):
        path = tmp_path / "custom.py"
        path.write_text(
            "@monitor\n"
            "class Gate:\n"
            "    def wait_open(self):\n"
            "        block_until(self.is_open)\n",
            encoding="utf-8",
        )
        assert main([str(path), "--decorator-name", "monitor", "--waituntil-name", "block_until"]) == 0
        assert "wait_until" in capsys.readouterr().out
