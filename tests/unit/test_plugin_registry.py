"""Unit tests for the generic plugin registry all four layers share."""

from __future__ import annotations

import pytest

from repro.core.plugin_registry import PluginRegistry


class Widget:
    name = "abstract"
    description = ""

    def describe(self):
        return self.description or self.name


class Gear(Widget):
    name = "gear"
    description = "a gear"


class Lever(Widget):
    name = "lever"
    description = "a lever"


def make_registry(**kwargs):
    return PluginRegistry(kind="widget", base=Widget, **kwargs)


class TestRegistration:
    def test_register_and_get(self):
        registry = make_registry()
        assert registry.register(Gear) is Gear
        assert registry.get("gear") is Gear
        assert registry.names() == ("gear",)

    def test_registration_order_is_preserved(self):
        registry = make_registry()
        registry.register(Gear)
        registry.register(Lever)
        assert registry.names() == ("gear", "lever")
        assert list(registry) == ["gear", "lever"]

    def test_duplicate_name_rejected_without_replace(self):
        registry = make_registry()
        registry.register(Gear)

        class Impostor(Widget):
            name = "gear"

        with pytest.raises(ValueError, match="already registered"):
            registry.register(Impostor)
        registry.register(Impostor, replace=True)
        assert registry.get("gear") is Impostor

    def test_same_class_reregistration_is_idempotent(self):
        registry = make_registry()
        registry.register(Gear)
        registry.register(Gear)  # no replace needed for the same object
        assert registry.names() == ("gear",)

    def test_non_subclass_rejected(self):
        with pytest.raises(TypeError, match="Widget subclass"):
            make_registry().register(object)

    def test_base_default_name_rejected(self):
        class Nameless(Widget):
            pass

        with pytest.raises(ValueError, match="unique 'name'"):
            make_registry().register(Nameless)

    def test_unregister(self):
        registry = make_registry()
        registry.register(Gear)
        registry.unregister("gear")
        assert "gear" not in registry
        with pytest.raises(ValueError, match="unknown widget"):
            registry.unregister("gear")


class TestLookupErrors:
    def test_unknown_name_lists_registered(self):
        registry = make_registry()
        registry.register(Gear)
        registry.register(Lever)
        with pytest.raises(ValueError, match="unknown widget 'cog'") as excinfo:
            registry.get("cog")
        message = str(excinfo.value)
        assert "gear" in message and "lever" in message

    def test_wording_knobs_flow_into_messages(self):
        registry = PluginRegistry(
            kind="signalling policy",
            base=Widget,
            noun="policy",
            plural="policies",
            spec_noun="signalling",
        )
        with pytest.raises(ValueError, match="unknown signalling policy 'x'"):
            registry.get("x")
        with pytest.raises(ValueError, match="registered policies"):
            registry.get("x")
        with pytest.raises(TypeError, match="signalling must be a registered policy name"):
            registry.create(42)

        class Bad(Widget):
            pass

        with pytest.raises(ValueError, match="policy class Bad"):
            registry.register(Bad)


class TestCreate:
    def test_create_from_name_class_and_instance(self):
        registry = make_registry()
        registry.register(Gear)
        assert isinstance(registry.create("gear"), Gear)
        assert isinstance(registry.create(Gear), Gear)
        instance = Lever()
        assert registry.create(instance) is instance

    def test_create_forwards_kwargs(self):
        class Tuned(Widget):
            name = "tuned"

            def __init__(self, knob=0):
                self.knob = knob

        registry = make_registry()
        registry.register(Tuned)
        assert registry.create("tuned", knob=7).knob == 7

    def test_describe_falls_back_for_required_constructor_args(self):
        class Needy(Widget):
            name = "needy"
            description = "needs a knob"

            def __init__(self, knob):
                self.knob = knob

        registry = make_registry()
        registry.register(Needy)
        assert registry.describe("needy") == "needs a knob"


class TestInstanceRegistry:
    def make(self):
        return PluginRegistry(kind="thing", base=Widget, stores_instances=True)

    def test_register_and_create_return_the_instance(self):
        registry = self.make()
        gear = Gear()
        registry.register(gear)
        assert registry.get("gear") is gear
        assert registry.create("gear") is gear

    def test_class_is_rejected_when_instances_required(self):
        with pytest.raises(TypeError, match="Widget instance"):
            self.make().register(Gear)

    def test_describe_uses_the_instance(self):
        registry = self.make()
        registry.register(Gear())
        assert registry.describe("gear") == "a gear"


class TestView:
    def test_view_is_live_and_mutable(self):
        registry = make_registry(stores_instances=True)
        view = registry.view()
        assert len(view) == 0
        gear = Gear()
        view["gear"] = gear
        assert view["gear"] is gear
        assert list(view) == ["gear"]
        assert dict(view) == {"gear": gear}
        del view["gear"]
        assert "gear" not in view

    def test_view_getitem_raises_keyerror(self):
        view = make_registry().view()
        with pytest.raises(KeyError):
            view["missing"]

    def test_view_rejects_mismatched_key(self):
        view = make_registry(stores_instances=True).view()
        with pytest.raises(ValueError, match="must equal the plugin's own name"):
            view["not_gear"] = Gear()


class TestLazyPopulation:
    def test_populate_runs_once_before_first_query(self):
        calls = []
        registry = make_registry()

        def populate():
            calls.append(1)
            registry.register(Gear)

        registry.set_populate(populate)
        assert registry.names() == ("gear",)
        assert registry.get("gear") is Gear
        assert calls == [1]

    def test_registration_does_not_trigger_population(self):
        # register() must stay usable mid-populate (the standard set
        # registers through it), so it cannot itself run the hook; only
        # queries do.
        registry = make_registry()
        registry.set_populate(lambda: registry.register(Gear))
        registry.register(Lever)
        # Only the query below pulls in the standard set.
        assert set(registry.names()) == {"gear", "lever"}
