"""Unit tests for the experiment registry helpers (no sweeps are run here)."""

from __future__ import annotations

import pytest

from repro.experiments.registry import (
    Experiment,
    ShapeCheck,
    final_point_metric,
    ratio_at_max,
)
from repro.harness.results import ExperimentSeries, MeasurementPoint
from repro.harness.runner import RunConfig


def make_point(mechanism, threads, modelled_runtime, context_switches=100.0):
    return MeasurementPoint(
        problem="demo",
        mechanism=mechanism,
        backend="simulation",
        threads=threads,
        repetitions=1,
        wall_time=modelled_runtime,
        modelled_runtime=modelled_runtime,
        context_switches=context_switches,
        predicate_evaluations=10.0,
        signals=5.0,
    )


def make_series():
    series = ExperimentSeries(name="demo", x_label="# threads", backend="simulation")
    series.add(make_point("explicit", 2, 1.0, context_switches=50))
    series.add(make_point("explicit", 8, 4.0, context_switches=400))
    series.add(make_point("autosynch", 2, 1.5, context_switches=60))
    series.add(make_point("autosynch", 8, 2.0, context_switches=80))
    return series


class TestHelpers:
    def test_final_point_metric(self):
        series = make_series()
        assert final_point_metric(series, "explicit", "modelled_runtime") == 4.0
        assert final_point_metric(series, "autosynch", "context_switches") == 80

    def test_final_point_metric_missing_mechanism(self):
        assert final_point_metric(make_series(), "baseline", "modelled_runtime") == 0.0

    def test_ratio_at_max(self):
        series = make_series()
        assert ratio_at_max(series, "explicit", "autosynch", "modelled_runtime") == pytest.approx(2.0)
        assert ratio_at_max(series, "explicit", "autosynch", "context_switches") == pytest.approx(5.0)

    def test_ratio_with_zero_denominator(self):
        series = ExperimentSeries(name="demo", x_label="x", backend="simulation")
        series.add(make_point("explicit", 2, 1.0))
        series.add(make_point("autosynch", 2, 0.0))
        assert ratio_at_max(series, "explicit", "autosynch", "modelled_runtime") == float("inf")

    def test_empty_series_ratio_defaults_to_one(self):
        empty = ExperimentSeries(name="demo", x_label="x", backend="simulation")
        assert ratio_at_max(empty, "explicit", "autosynch", "modelled_runtime") == 1.0


class TestExperimentObject:
    def build(self):
        config = RunConfig(
            problem="bounded_buffer",
            thread_counts=(2, 8),
            mechanisms=("explicit", "autosynch"),
            total_ops=100,
        )
        return Experiment(
            experiment_id="demo_exp",
            title="a demo experiment",
            paper_reference="Figure 0",
            full_config=config,
            quick_config=config.scaled(total_ops=10),
            shape_checks=(
                ShapeCheck("autosynch is within 3x of explicit",
                           lambda s: ratio_at_max(s, "autosynch", "explicit", "modelled_runtime") <= 3.0),
                ShapeCheck("never true", lambda s: False),
            ),
        )

    def test_shape_checks_report_pass_and_fail(self):
        experiment = self.build()
        results = dict(experiment.check_shapes(make_series()))
        assert results["autosynch is within 3x of explicit"] is True
        assert results["never true"] is False

    def test_default_report_contains_title_and_mechanisms(self):
        experiment = self.build()
        text = experiment.report(make_series())
        assert "demo_exp" in text
        assert "Figure 0" in text
        assert "explicit" in text and "autosynch" in text

    def test_custom_report_builder_wins(self):
        experiment = self.build()
        experiment.report_builder = lambda series: "CUSTOM REPORT"
        assert experiment.report(make_series()) == "CUSTOM REPORT"

    def test_shape_check_evaluate(self):
        check = ShapeCheck("always", lambda series: True)
        assert check.evaluate(make_series()) is True
