"""Unit tests for the monitor base classes (entry wrapping, wait_until, modes)."""

from __future__ import annotations

import pytest

from repro.core import (
    AUTOMATIC_MODES,
    AutoSynchMonitor,
    ExplicitMonitor,
    MonitorUsageError,
    query_method,
)
from repro.runtime import SimulationBackend, ThreadingBackend


class Cell(AutoSynchMonitor):
    """Single-slot buffer used throughout these tests."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.value = None
        self.generation = 0

    def put(self, value):
        self.wait_until("value is None")
        self.value = value
        self.generation += 1

    def take(self):
        self.wait_until("value is not None")
        value = self.value
        self.value = None
        return value

    def put_twice(self, first, second):
        # Nested entry-method call: must not deadlock on the monitor lock.
        self.put(first)
        taken = self.take()
        self.put(second)
        return taken

    @query_method
    def is_empty(self):
        return self.value is None

    def wait_for_generation(self, wanted):
        self.wait_until("generation >= wanted", wanted=wanted)
        return self.generation


class TestEntryMethods:
    def test_entry_methods_work_single_threaded(self):
        cell = Cell()
        cell.put(41)
        assert cell.take() == 41

    def test_entries_are_counted(self):
        cell = Cell()
        cell.put(1)
        cell.take()
        assert cell.stats.entries == 2

    def test_nested_entry_calls_do_not_deadlock(self):
        cell = Cell()
        assert cell.put_twice("a", "b") == "a"
        assert cell.take() == "b"

    def test_query_methods_are_not_wrapped(self):
        cell = Cell()
        # A query method called from outside does not count as an entry.
        entries_before = cell.stats.entries
        assert cell.is_empty() is True
        assert cell.stats.entries == entries_before

    def test_missing_super_init_gives_helpful_error(self):
        class Broken(AutoSynchMonitor):
            def __init__(self):
                self.value = 1  # forgot super().__init__()

            def poke(self):
                return self.value

        broken = Broken()
        with pytest.raises(MonitorUsageError) as excinfo:
            broken.poke()
        assert "super().__init__" in str(excinfo.value)

    def test_stats_and_backend_properties(self):
        backend = ThreadingBackend()
        cell = Cell(backend=backend)
        assert cell.backend is backend
        assert cell.stats.entries == 0


class TestWaitUntil:
    def test_fast_path_does_not_register_predicates(self):
        cell = Cell()
        cell.put(1)
        assert cell.stats.predicate_registrations == 0
        assert cell.stats.waits == 0

    def test_wait_until_outside_entry_method_raises(self):
        cell = Cell()
        with pytest.raises(MonitorUsageError):
            cell.wait_until("value is None")

    def test_unknown_name_in_predicate_raises(self):
        class Bad(AutoSynchMonitor):
            def __init__(self):
                super().__init__()
                self.x = 1

            def go(self):
                self.wait_until("no_such_field > 0")

        from repro.predicates import ClassificationError

        with pytest.raises(ClassificationError):
            Bad().go()

    def test_invalid_predicate_source_raises(self):
        from repro.predicates import PredicateParseError

        class Bad(AutoSynchMonitor):
            def __init__(self):
                super().__init__()

            def go(self):
                self.wait_until("x >")

        with pytest.raises(PredicateParseError):
            Bad().go()

    def test_complex_predicate_uses_local_kwargs(self):
        cell = Cell()
        cell.put(1)
        assert cell.wait_for_generation(1) == 1

    def test_predicates_are_compiled_once_per_source(self):
        cell = Cell()
        cell.put(1)
        cell.take()
        cell.put(2)
        cell.take()
        assert len(cell._predicate_cache) == 2

    def test_invalid_signalling_mode_rejected(self):
        with pytest.raises(ValueError):
            Cell(signalling="telepathy")

    @pytest.mark.parametrize("mode", AUTOMATIC_MODES)
    def test_all_modes_construct(self, mode):
        cell = Cell(signalling=mode)
        assert cell.signalling == mode
        cell.put(1)
        assert cell.take() == 1

    def test_condition_manager_exposed_for_relay_modes(self):
        assert Cell(signalling="autosynch").condition_manager is not None
        assert Cell(signalling="autosynch_t").condition_manager is not None
        assert Cell(signalling="baseline").condition_manager is None


class TestBlockingBehaviour:
    @pytest.mark.parametrize("mode", AUTOMATIC_MODES)
    def test_producer_consumer_blocks_and_wakes(self, mode):
        backend = SimulationBackend(seed=2)
        cell = Cell(backend=backend, signalling=mode)
        taken = []

        def consumer():
            for _ in range(10):
                taken.append(cell.take())

        def producer():
            for value in range(10):
                cell.put(value)

        backend.run([consumer, producer], ["consumer", "producer"])
        assert taken == list(range(10))
        assert cell.stats.waits > 0

    def test_waiters_are_woken_in_relay_fashion(self):
        backend = SimulationBackend(seed=5)
        cell = Cell(backend=backend, signalling="autosynch")

        order = []

        def waiter(generation):
            def body():
                cell.wait_for_generation(generation)
                order.append(generation)
            return body

        def driver():
            for value in range(3):
                cell.put(value)
                cell.take()

        backend.run(
            [waiter(1), waiter(2), waiter(3), driver],
            ["w1", "w2", "w3", "driver"],
        )
        assert sorted(order) == [1, 2, 3]

    def test_spurious_wakeups_are_handled(self):
        # Two consumers wait for the same value; only one can win.
        backend = SimulationBackend(seed=9)
        cell = Cell(backend=backend, signalling="baseline")
        winners = []

        def consumer():
            winners.append(cell.take())

        def producer():
            cell.put("only")

        backend.run([consumer, producer, lambda: cell.put("second")],
                    ["consumer", "producer", "producer2"])
        assert winners == ["only"] or winners == ["second"]


class ExplicitCell(ExplicitMonitor):
    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.value = None
        self.not_empty = self.new_condition("not_empty")
        self.not_full = self.new_condition("not_full")

    def put(self, value):
        while self.value is not None:
            self.wait_on(self.not_full)
        self.value = value
        self.signal(self.not_empty)

    def take(self):
        while self.value is None:
            self.wait_on(self.not_empty)
        value = self.value
        self.value = None
        self.signal(self.not_full)
        return value


class TestExplicitMonitor:
    def test_basic_usage(self):
        cell = ExplicitCell()
        cell.put(7)
        assert cell.take() == 7
        assert cell.stats.signals_sent == 2

    def test_signal_requires_monitor(self):
        cell = ExplicitCell()
        with pytest.raises(MonitorUsageError):
            cell.signal(cell.not_empty)

    def test_wait_requires_monitor(self):
        cell = ExplicitCell()
        with pytest.raises(MonitorUsageError):
            cell.wait_on(cell.not_empty)

    def test_signal_all_requires_monitor(self):
        cell = ExplicitCell()
        with pytest.raises(MonitorUsageError):
            cell.signal_all(cell.not_empty)

    def test_blocking_round_trip_on_simulation(self):
        backend = SimulationBackend(seed=3)
        cell = ExplicitCell(backend=backend)
        results = []
        backend.run(
            [lambda: results.append(cell.take()), lambda: cell.put(99)],
            ["consumer", "producer"],
        )
        assert results == [99]
