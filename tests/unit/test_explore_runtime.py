"""Unit coverage for the exploration throughput engine's building blocks:
backend recycling, the predicate artifact memo, verified-depth replay,
prefix-suppressed footprints and per-stage timings.
"""

from __future__ import annotations

import pytest

from repro.explore.engine import (
    ExploreTask,
    TaskRuntime,
    clear_runtime_cache,
    run_prefix,
    task_runtime,
)
from repro.explore.dpor import explore_dpor
from repro.predicates.predicate import (
    _classified_parts,
    clear_predicate_memo,
    compile_predicate,
)
from repro.runtime.simulation import SimulationBackend, SimulationError
from repro.runtime.simulation.footprints import (
    DecisionFootprint,
    FootprintRecorder,
    independent,
)
from repro.runtime.simulation.schedulers import ScheduleTrace


TASK = ExploreTask(problem="bounded_buffer", mechanism="autosynch",
                   threads=2, total_ops=2)


def outcome_signature(outcome):
    return (outcome.kind, outcome.digest, outcome.trace.choices(),
            outcome.backend_metrics, outcome.monitor_stats)


class TestBackendRecycling:
    def test_recycled_backend_runs_are_bit_identical(self):
        runtime = TaskRuntime(TASK)
        first = run_prefix(TASK, (), runtime=runtime)
        # Same runtime again: the backend is recycled, not rebuilt.
        recycled = run_prefix(TASK, (), runtime=runtime)
        cold = run_prefix(TASK, (), runtime=TaskRuntime(TASK))
        assert outcome_signature(first) == outcome_signature(recycled)
        assert outcome_signature(first) == outcome_signature(cold)

    def test_recycle_refused_mid_run_and_when_tainted(self):
        backend = SimulationBackend(seed=0)
        backend._running = True
        with pytest.raises(SimulationError):
            backend.recycle()
        backend._running = False
        backend._tainted = True
        with pytest.raises(SimulationError):
            backend.recycle()

    def test_tainted_backend_is_replaced_not_recycled(self):
        runtime = TaskRuntime(TASK)
        first = run_prefix(TASK, (), runtime=runtime)
        assert runtime._backend is not None
        runtime._backend._tainted = True
        tainted = runtime._backend
        replaced = run_prefix(TASK, (), runtime=runtime)
        assert runtime._backend is not tainted
        assert outcome_signature(first) == outcome_signature(replaced)

    def test_runtime_cache_normalizes_seed_and_caps_size(self):
        clear_runtime_cache()
        base = task_runtime(TASK)
        reseeded = task_runtime(ExploreTask(**{**TASK.to_dict(), "seed": 7}))
        assert base is reseeded
        assert task_runtime(TASK) is base


class TestPredicateMemo:
    def test_recompilation_shares_classified_artifacts(self):
        clear_predicate_memo()
        first = compile_predicate("count > 0", {"count": 0}, {"n": 0})
        misses = _classified_parts.cache_info().misses
        second = compile_predicate("count > 0", {"count": 0}, {"n": 0})
        assert _classified_parts.cache_info().misses == misses
        assert _classified_parts.cache_info().hits > 0
        # Fresh wrapper objects: per-predicate mutable state (quarantine,
        # engine demotion) must not leak between compilations.
        assert first is not second
        assert first.expr is second.expr

    def test_memo_clears_and_recompiles(self):
        compile_predicate("count > 0", {"count": 0})
        clear_predicate_memo()
        assert _classified_parts.cache_info().currsize == 0
        again = compile_predicate("count > 0", {"count": 0})
        assert "count" in again.shared_names


class TestVerifiedDepthReplay:
    def test_verified_prefix_replay_matches_full_checking(self):
        full = run_prefix(TASK, (1, 1, 0))
        shared = run_prefix(TASK, (1, 1, 0), verified_depth=3)
        assert outcome_signature(full) == outcome_signature(shared)

    def test_dpor_prefix_sharing_keeps_dfs_violation_contract(self):
        # The whole-engine property: prefix-shared DPOR still visits the
        # schedules it visited before sharing existed (pinned count for the
        # canonical 2x2 exhaust) and stays complete.
        report = explore_dpor(TASK)
        assert report.complete
        assert report.schedules_visited == 17


class TestPrefixSuppressedFootprints:
    def test_recorder_skip_yields_none_placeholders(self):
        recorder = FootprintRecorder(skip=2)
        recorder.note_write("ignored")
        recorder.flush()
        recorder.note_lock("also-ignored")
        recorder.flush()
        recorder.note_write("kept")
        recorder.flush()
        assert recorder.footprints[:2] == [None, None]
        assert recorder.footprints[2].writes == frozenset({"kept"})

    def test_none_footprint_is_conservatively_dependent(self):
        real = DecisionFootprint(writes=frozenset({"x"}))
        assert not independent(None, real)
        assert not independent(real, None)

    def test_footprints_from_matches_full_recording_suffix(self):
        full = run_prefix(TASK, (1, 0), record_footprints=True)
        skip = 2
        shared = run_prefix(TASK, (1, 0), record_footprints=True,
                            verified_depth=2, footprints_from=skip)
        assert full.digest == shared.digest
        assert all(fp is None for fp in shared.trace.footprints[:skip])
        assert shared.trace.footprints[skip:] == full.trace.footprints[skip:]

    def test_trace_serialization_roundtrips_none_footprints(self):
        trace = ScheduleTrace(
            footprints=[None, DecisionFootprint(reads=frozenset({"a"}))]
        )
        restored = ScheduleTrace.from_dict(trace.to_dict())
        assert restored.footprints == trace.footprints


class TestStageTimings:
    def test_outcome_carries_stage_buckets(self):
        outcome = run_prefix(TASK, ())
        assert set(outcome.timings) == {"build", "run", "classify", "oracle"}
        assert all(seconds >= 0.0 for seconds in outcome.timings.values())
        # Oracle checks happen inside the run stage.
        assert outcome.timings["oracle"] <= outcome.timings["run"]
