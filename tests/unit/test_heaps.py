"""Unit tests for the threshold-tag heaps (§4.3.2)."""

from __future__ import annotations

import pytest

from repro.core.heaps import ThresholdHeap, ThresholdNode


class TestThresholdNode:
    @pytest.mark.parametrize(
        "op, key, value, expected",
        [
            (">", 5, 6, True),
            (">", 5, 5, False),
            (">=", 5, 5, True),
            ("<", 3, 2, True),
            ("<", 3, 3, False),
            ("<=", 3, 3, True),
        ],
    )
    def test_satisfied_by(self, op, key, value, expected):
        node = ThresholdNode(key=key, op=op)
        assert node.satisfied_by(value) is expected

    def test_unknown_operator_raises(self):
        with pytest.raises(ValueError):
            ThresholdNode(key=1, op="!=").satisfied_by(1)


class TestMinHeap:
    def test_weakest_lower_bound_is_at_the_root(self):
        heap = ThresholdHeap("min")
        heap.add(7, ">", "p1")
        heap.add(5, ">=", "p2")
        heap.add(9, ">", "p3")
        assert heap.peek().key == 5

    def test_inclusive_operator_is_weaker_for_equal_keys(self):
        # The paper: for the same key, >= must be checked before > .
        heap = ThresholdHeap("min")
        heap.add(5, ">", "strict")
        heap.add(5, ">=", "inclusive")
        assert heap.peek().op == ">="

    def test_rejects_upper_bound_operators(self):
        heap = ThresholdHeap("min")
        with pytest.raises(ValueError):
            heap.add(5, "<", "p")

    def test_poll_and_push_back(self):
        heap = ThresholdHeap("min")
        heap.add(5, ">=", "a")
        heap.add(8, ">=", "b")
        first = heap.poll()
        assert first.key == 5
        assert heap.peek().key == 8
        heap.push_node(first)
        assert heap.peek().key == 5

    def test_entries_group_under_one_node(self):
        heap = ThresholdHeap("min")
        node_a = heap.add(5, ">=", "a")
        node_b = heap.add(5, ">=", "b")
        assert node_a is node_b
        assert node_a.entries == ["a", "b"]
        assert len(heap) == 1


class TestMaxHeap:
    def test_weakest_upper_bound_is_at_the_root(self):
        heap = ThresholdHeap("max")
        heap.add(3, "<", "p1")
        heap.add(10, "<=", "p2")
        heap.add(7, "<", "p3")
        assert heap.peek().key == 10

    def test_inclusive_operator_is_weaker_for_equal_keys(self):
        heap = ThresholdHeap("max")
        heap.add(3, "<", "strict")
        heap.add(3, "<=", "inclusive")
        assert heap.peek().op == "<="

    def test_rejects_lower_bound_operators(self):
        heap = ThresholdHeap("max")
        with pytest.raises(ValueError):
            heap.add(5, ">", "p")


class TestDiscard:
    def test_discard_removes_entry(self):
        heap = ThresholdHeap("min")
        node = heap.add(5, ">=", "a")
        heap.add(5, ">=", "b")
        heap.discard(5, ">=", "a")
        assert node.entries == ["b"]
        assert len(heap) == 1

    def test_discard_last_entry_kills_node(self):
        heap = ThresholdHeap("min")
        heap.add(5, ">=", "a")
        heap.add(8, ">=", "b")
        heap.discard(5, ">=", "a")
        assert len(heap) == 1
        assert heap.peek().key == 8

    def test_discard_unknown_entry_is_a_noop(self):
        heap = ThresholdHeap("min")
        heap.add(5, ">=", "a")
        heap.discard(5, ">=", "ghost")
        heap.discard(99, ">=", "a")
        assert len(heap) == 1

    def test_dead_nodes_are_pruned_lazily(self):
        heap = ThresholdHeap("min")
        heap.add(5, ">=", "a")
        heap.add(6, ">=", "b")
        heap.discard(5, ">=", "a")
        # Re-adding the same (key, op) after death creates a fresh node.
        fresh = heap.add(5, ">=", "c")
        assert heap.peek() is fresh

    def test_empty_heap_peek_and_poll(self):
        heap = ThresholdHeap("min")
        assert heap.peek() is None
        assert heap.poll() is None
        assert not heap

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            ThresholdHeap("sideways")
