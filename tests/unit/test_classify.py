"""Unit tests for shared/local classification (Definitions 1 and 5)."""

from __future__ import annotations

import pytest

from repro.predicates import (
    ClassificationError,
    Name,
    Scope,
    classify,
    free_names,
    is_complex_predicate,
    is_shared_predicate,
    parse_predicate,
    scope_of,
)
from repro.predicates.classify import local_names_used, shared_names_used


def classified(source, shared=(), local=()):
    return classify(parse_predicate(source), shared, local)


class TestClassify:
    def test_bare_name_resolves_to_shared(self):
        expr = classified("count > 0", shared={"count"})
        names = free_names(expr)
        assert names == {"count": Scope.SHARED}

    def test_bare_name_resolves_to_local(self):
        expr = classified("num > 0", local={"num"})
        assert free_names(expr) == {"num": Scope.LOCAL}

    def test_local_shadows_shared_for_bare_names(self):
        expr = classified("count > 0", shared={"count"}, local={"count"})
        assert free_names(expr) == {"count": Scope.LOCAL}

    def test_self_prefixed_name_stays_shared_even_if_local_exists(self):
        expr = classified("self.count > 0", shared={"count"}, local={"count"})
        assert free_names(expr) == {"count": Scope.SHARED}

    def test_unknown_name_raises(self):
        with pytest.raises(ClassificationError) as excinfo:
            classified("mystery > 0", shared={"count"}, local={"num"})
        assert "mystery" in str(excinfo.value)

    def test_classification_covers_nested_expressions(self):
        expr = classified(
            "forks[left] + forks[right] == 2", shared={"forks"}, local={"left", "right"}
        )
        assert shared_names_used(expr) == {"forks"}
        assert local_names_used(expr) == {"left", "right"}

    def test_classification_is_pure(self):
        original = parse_predicate("count >= num")
        classify(original, {"count"}, {"num"})
        # The original tree still has unresolved scopes.
        assert free_names(original) == {"count": Scope.UNKNOWN, "num": Scope.UNKNOWN}

    def test_conflicting_scopes_for_same_name_raise(self):
        # ``self.count`` (shared) mixed with a bare ``count`` that resolves to
        # a local is genuinely ambiguous.
        expr = parse_predicate("self.count == count")
        resolved = classify(expr, {"count"}, {"count"})
        with pytest.raises(ClassificationError):
            free_names(resolved)


class TestPredicateCategories:
    def test_shared_predicate(self):
        expr = classified("count > 0 and not busy", shared={"count", "busy"})
        assert is_shared_predicate(expr)
        assert not is_complex_predicate(expr)

    def test_complex_predicate(self):
        expr = classified("count >= num", shared={"count"}, local={"num"})
        assert is_complex_predicate(expr)
        assert not is_shared_predicate(expr)

    def test_constant_only_predicate_is_shared(self):
        expr = classified("1 < 2")
        assert is_shared_predicate(expr)


class TestScopeOf:
    def test_shared_expression(self):
        expr = classified("count + size", shared={"count", "size"})
        assert scope_of(expr) is Scope.SHARED

    def test_local_expression(self):
        expr = classified("num * 2", local={"num"})
        assert scope_of(expr) is Scope.LOCAL

    def test_constant_expression_counts_as_local(self):
        assert scope_of(parse_predicate("40 + 8")) is Scope.LOCAL

    def test_mixed_expression_has_no_scope(self):
        expr = classified("count + num", shared={"count"}, local={"num"})
        assert scope_of(expr) is None

    def test_unresolved_names_have_no_scope(self):
        assert scope_of(parse_predicate("count + num")) is None

    def test_monitor_method_call_is_shared(self):
        expr = classified("self.size()", shared=set())
        assert scope_of(expr) is Scope.SHARED

    def test_builtin_over_locals_is_local(self):
        expr = classified("len(batch)", local={"batch"})
        assert scope_of(expr) is Scope.LOCAL

    def test_builtin_over_shared_is_shared(self):
        expr = classified("len(items)", shared={"items"})
        assert scope_of(expr) is Scope.SHARED
