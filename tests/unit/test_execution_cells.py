"""Unit tests for the execution subsystem's pure stages: cell enumeration,
per-cell seeding, frozen problem params and the deterministic merge."""

from __future__ import annotations

import pickle

import pytest

from repro.harness.execution import (
    FrozenMapping,
    RunCell,
    cell_seed,
    enumerate_cells,
    merge_cell_results,
)
from repro.harness.results import RunResult
from repro.harness.runner import RunConfig


def make_config(**overrides):
    defaults = dict(
        problem="bounded_buffer",
        thread_counts=(2, 4),
        mechanisms=("explicit", "autosynch"),
        total_ops=100,
        repetitions=3,
        seed=7,
    )
    defaults.update(overrides)
    return RunConfig(**defaults)


def make_result(mechanism, threads, wall_time=1.0, switches=10):
    return RunResult(
        problem="bounded_buffer",
        mechanism=mechanism,
        backend="simulation",
        threads=threads,
        wall_time=wall_time,
        operations=100,
        backend_metrics={"context_switches": switches},
        monitor_stats={"predicate_evaluations": 5},
    )


class TestFrozenMapping:
    def test_behaves_like_a_mapping(self):
        params = FrozenMapping({"capacity": 2, "mode": "fast"})
        assert params["capacity"] == 2
        assert dict(params) == {"capacity": 2, "mode": "fast"}
        assert len(params) == 2
        assert params == {"mode": "fast", "capacity": 2}

    def test_is_immutable(self):
        params = FrozenMapping({"capacity": 2})
        with pytest.raises(TypeError):
            params["capacity"] = 3

    def test_is_hashable_and_order_insensitive(self):
        a = FrozenMapping({"x": 1, "y": 2})
        b = FrozenMapping({"y": 2, "x": 1})
        assert hash(a) == hash(b)
        assert a == b

    def test_pickle_round_trip(self):
        params = FrozenMapping({"capacity": 2})
        clone = pickle.loads(pickle.dumps(params))
        assert clone == params
        assert isinstance(clone, FrozenMapping)


class TestRunConfigImmutability:
    def test_problem_params_are_normalized_to_frozen(self):
        config = make_config(problem_params={"capacity": 2})
        assert isinstance(config.problem_params, FrozenMapping)

    def test_replace_does_not_alias_mutable_state(self):
        source = {"capacity": 2}
        config = make_config(problem_params=source)
        copy = config.scaled(total_ops=10)
        # Mutating the dict the config was built from must not leak in.
        source["capacity"] = 99
        assert config.problem_params["capacity"] == 2
        assert copy.problem_params["capacity"] == 2

    def test_config_is_hashable(self):
        config = make_config(problem_params={"capacity": 2})
        assert hash(config) == hash(make_config(problem_params={"capacity": 2}))

    def test_sequence_fields_normalized_to_tuples(self):
        config = make_config(thread_counts=[2, 4], mechanisms=["explicit"])
        assert config.thread_counts == (2, 4)
        assert config.mechanisms == ("explicit",)


class TestCellSeed:
    def test_is_stable(self):
        assert cell_seed(0, "p", "m", 2, 0) == cell_seed(0, "p", "m", 2, 0)

    def test_varies_with_every_coordinate(self):
        base = cell_seed(0, "p", "m", 2, 0)
        assert cell_seed(1, "p", "m", 2, 0) != base
        assert cell_seed(0, "q", "m", 2, 0) != base
        assert cell_seed(0, "p", "n", 2, 0) != base
        assert cell_seed(0, "p", "m", 4, 0) != base
        assert cell_seed(0, "p", "m", 2, 1) != base


class TestEnumerateCells:
    def test_count_and_order(self):
        config = make_config()
        cells = enumerate_cells(config)
        assert len(cells) == 2 * 2 * 3  # mechanisms x thread counts x reps
        # Mechanism-major, then x value, then repetition (the legacy order).
        assert [(c.mechanism, c.x_value, c.repetition) for c in cells[:4]] == [
            ("explicit", 2, 0),
            ("explicit", 2, 1),
            ("explicit", 2, 2),
            ("explicit", 4, 0),
        ]

    def test_cells_carry_config_fields(self):
        config = make_config(problem_params={"capacity": 2}, validate=True)
        cell = enumerate_cells(config)[0]
        assert cell.problem == "bounded_buffer"
        assert cell.total_ops == 100
        assert cell.validate is True
        assert cell.problem_params == {"capacity": 2}

    def test_seeds_are_independent_of_sweep_order(self):
        forward = make_config(mechanisms=("explicit", "autosynch"))
        reversed_ = make_config(mechanisms=("autosynch", "explicit"))
        seeds_forward = {
            (c.mechanism, c.x_value, c.repetition): c.seed
            for c in enumerate_cells(forward)
        }
        seeds_reversed = {
            (c.mechanism, c.x_value, c.repetition): c.seed
            for c in enumerate_cells(reversed_)
        }
        assert seeds_forward == seeds_reversed

    def test_cells_are_picklable(self):
        cells = enumerate_cells(make_config(problem_params={"capacity": 2}))
        clones = pickle.loads(pickle.dumps(cells))
        assert clones == cells


class TestMergeCellResults:
    def test_merges_in_config_order_regardless_of_result_identity(self):
        config = make_config(repetitions=1, drop_extremes=False)
        cells = enumerate_cells(config)
        results = [make_result(c.mechanism, c.x_value) for c in cells]
        series = merge_cell_results(config, cells, results)
        assert tuple(series.mechanisms()) == ("explicit", "autosynch")
        assert series.x_values() == [2, 4]
        assert series.point_for("autosynch", 4).context_switches == 10

    def test_drop_extremes_applies_per_point(self):
        config = make_config(
            mechanisms=("explicit",), thread_counts=(2,), repetitions=3,
            drop_extremes=True,
        )
        cells = enumerate_cells(config)
        results = [
            make_result("explicit", 2, switches=switches)
            for switches in (100, 10, 1)  # modelled runtime ranks these
        ]
        series = merge_cell_results(config, cells, results)
        point = series.point_for("explicit", 2)
        assert point.repetitions == 1
        assert point.context_switches == 10  # best (1) and worst (100) dropped

    def test_length_mismatch_is_rejected(self):
        config = make_config()
        cells = enumerate_cells(config)
        with pytest.raises(ValueError, match="every cell"):
            merge_cell_results(config, cells, [])

    def test_missing_point_is_rejected(self):
        config = make_config(mechanisms=("explicit",), thread_counts=(2,), repetitions=1)
        cells = enumerate_cells(config)
        results = [make_result("explicit", 2)]
        wider = make_config(mechanisms=("explicit", "autosynch"), thread_counts=(2,),
                            repetitions=1)
        with pytest.raises(ValueError, match="no cells"):
            merge_cell_results(wider, cells, results)
