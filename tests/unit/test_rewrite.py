"""Unit tests for comparison normalization into ``SE op LE`` form."""

from __future__ import annotations

import pytest

from repro.predicates import classify, normalize_comparison, parse_predicate, unparse
from repro.predicates.ast_nodes import Compare


def normalized(source, shared=(), local=()):
    expr = classify(parse_predicate(source), shared, local)
    assert isinstance(expr, Compare)
    return normalize_comparison(expr)


class TestAlreadyOriented:
    def test_shared_vs_local_stays(self):
        result = normalized("count >= num", shared={"count"}, local={"num"})
        assert unparse(result) == "count >= num"

    def test_local_vs_shared_is_flipped(self):
        result = normalized("num <= count", shared={"count"}, local={"num"})
        assert result.op == ">="
        assert unparse(result.left) == "count"
        assert unparse(result.right) == "num"

    def test_shared_vs_constant(self):
        result = normalized("count > 0", shared={"count"})
        assert unparse(result) == "count > 0"

    def test_constant_vs_shared_is_flipped(self):
        result = normalized("0 < count", shared={"count"})
        assert result.op == ">"
        assert unparse(result.left) == "count"

    def test_equality_orientation(self):
        result = normalized("me == turn", shared={"turn"}, local={"me"})
        assert result.op == "=="
        assert unparse(result.left) == "turn"
        assert unparse(result.right) == "me"


class TestAdditiveSeparation:
    def test_papers_example(self):
        # x - a == y + b  ->  x - y == a + b   (x, y shared; a, b local)
        result = normalized("x - a == y + b", shared={"x", "y"}, local={"a", "b"})
        assert unparse(result.left) == "x - y"
        assert unparse(result.right) == "a + b"
        assert result.op == "=="

    def test_shared_both_sides(self):
        result = normalized("count < len(buff)", shared={"count", "buff"})
        assert unparse(result.left) == "count - len(buff)"
        assert unparse(result.right) == "0"

    def test_mixed_side_with_builtin_over_local(self):
        result = normalized(
            "count + len(items) <= capacity", shared={"count", "capacity"}, local={"items"}
        )
        assert unparse(result.left) == "count - capacity"
        assert result.op == "<="
        assert unparse(result.right) == "-len(items)"

    def test_constants_are_folded_onto_the_local_side(self):
        result = normalized("count + 1 > n + 2", shared={"count"}, local={"n"})
        assert unparse(result.left) == "count"
        assert unparse(result.right) == "n + 1"

    def test_only_constants_on_one_side(self):
        result = normalized("count + 3 >= 10", shared={"count"})
        assert unparse(result.left) == "count"
        assert unparse(result.right) == "7"

    def test_unary_minus_terms(self):
        result = normalized("-a + x > 0", shared={"x"}, local={"a"})
        assert unparse(result.left) == "x"
        assert unparse(result.right) == "a"


class TestNotNormalizable:
    def test_purely_local_comparison(self):
        assert normalized("a > b", local={"a", "b"}) is None

    def test_purely_constant_comparison(self):
        assert normalized("1 > 2") is None

    def test_multiplicative_mixing_cannot_be_separated(self):
        assert (
            normalized("count * num > 10", shared={"count"}, local={"num"}) is None
        )

    def test_mixed_term_inside_sum(self):
        assert (
            normalized("count + count * num > 10", shared={"count"}, local={"num"})
            is None
        )

    def test_separable_product_of_shared_only(self):
        # A product of shared variables is a single shared term; it separates.
        result = normalized("x * y >= n", shared={"x", "y"}, local={"n"})
        assert unparse(result.left) == "x * y"
        assert unparse(result.right) == "n"


class TestSemanticsPreservation:
    @pytest.mark.parametrize(
        "source, shared, local, state, locals_",
        [
            ("x - a == y + b", {"x", "y"}, {"a", "b"}, {"x": 20, "y": 7}, {"a": 11, "b": 2}),
            ("count + 1 > n + 2", {"count"}, {"n"}, {"count": 5}, {"n": 3}),
            ("count < len(buff)", {"count", "buff"}, set(), {"count": 2, "buff": [1, 2, 3]}, {}),
            ("num <= count", {"count"}, {"num"}, {"count": 4}, {"num": 5}),
        ],
    )
    def test_normalized_comparison_is_equivalent(self, source, shared, local, state, locals_):
        from repro.predicates import evaluate

        original = classify(parse_predicate(source), shared, local)
        rewritten = normalize_comparison(original)
        assert rewritten is not None
        assert evaluate(original, state, locals_) == evaluate(rewritten, state, locals_)
