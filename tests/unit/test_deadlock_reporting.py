"""Deadlock diagnostics: thread names and block reasons must survive the
trip from the kernel's ``_handle_no_runnable_locked`` through
``run_workload`` to the caller."""

from __future__ import annotations

import pytest

from repro.core.monitor import ExplicitMonitor
from repro.harness.saturation import run_workload
from repro.predicates.codegen import DEFAULT_ENGINE
from repro.problems.base import Problem, WorkloadSpec
from repro.runtime.simulation import DeadlockError, SimulationBackend


class LockCycleProblem(Problem):
    """Two threads acquiring two labelled locks in opposite order."""

    name = "lock_cycle_test"
    description = "deliberate lock-order deadlock (test only)"
    mechanisms = ("explicit",)

    def build(
        self,
        mechanism,
        backend,
        threads,
        total_ops,
        seed=0,
        profile=False,
        validate=False,
        eval_engine=DEFAULT_ENGINE,
        **params,
    ) -> WorkloadSpec:
        first = backend.create_lock(label="first")
        second = backend.create_lock(label="second")

        def forward():
            first.acquire()
            backend.yield_control()
            second.acquire()

        def backward():
            second.acquire()
            backend.yield_control()
            first.acquire()

        return WorkloadSpec(
            monitor=ExplicitMonitor(backend=backend),
            targets=[forward, backward],
            names=["grab-forward", "grab-backward"],
            operations=2,
        )


class LoneWaiterProblem(Problem):
    """One thread waiting on a condition nobody will ever signal."""

    name = "lone_waiter_test"
    description = "unsignalled condition wait (test only)"
    mechanisms = ("explicit",)

    def build(
        self,
        mechanism,
        backend,
        threads,
        total_ops,
        seed=0,
        profile=False,
        validate=False,
        eval_engine=DEFAULT_ENGINE,
        **params,
    ) -> WorkloadSpec:
        monitor = ExplicitMonitor(backend=backend)
        lock = backend.create_lock(label="waiter-lock")
        condition = backend.create_condition(lock)
        condition.label = "never-signalled"

        def waiter():
            lock.acquire()
            condition.wait()
            lock.release()

        return WorkloadSpec(
            monitor=monitor,
            targets=[waiter],
            names=["patient-waiter"],
            operations=1,
        )


class TestDeadlockThroughRunWorkload:
    def test_lock_cycle_reports_names_and_reasons(self):
        backend = SimulationBackend(seed=0)
        with pytest.raises(DeadlockError) as excinfo:
            run_workload(
                LockCycleProblem(), "explicit", backend, threads=2, total_ops=2
            )
        message = str(excinfo.value)
        # Both thread names, both block reasons (with lock labels), and the
        # blocked-thread count must all be intact in the surfaced error.
        assert "grab-forward" in message
        assert "grab-backward" in message
        assert "waiting for lock second" in message
        assert "waiting for lock first" in message
        assert "all 2 live simulated threads are blocked" in message

    def test_condition_wait_reason_is_reported(self):
        backend = SimulationBackend(seed=0)
        with pytest.raises(DeadlockError) as excinfo:
            run_workload(
                LoneWaiterProblem(), "explicit", backend, threads=1, total_ops=1
            )
        message = str(excinfo.value)
        assert "patient-waiter" in message
        assert "waiting on condition never-signalled" in message

    def test_names_and_reasons_pair_up(self):
        # The per-thread detail must associate each name with *its own*
        # reason, in tid order: forward blocks on "second", backward on
        # "first".
        backend = SimulationBackend(seed=0)
        with pytest.raises(DeadlockError) as excinfo:
            run_workload(
                LockCycleProblem(), "explicit", backend, threads=2, total_ops=2
            )
        message = str(excinfo.value)
        assert "grab-forward (waiting for lock second)" in message
        assert "grab-backward (waiting for lock first)" in message
