"""Executor self-healing: per-task retries and worker-crash resubmission."""

from __future__ import annotations

import os
from concurrent.futures.process import BrokenProcessPool
from unittest import mock

import pytest

from repro.harness.execution import (
    DEFAULT_RETRY_BACKOFF,
    MAX_POOL_REBUILDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    call_with_retries,
    create_executor,
    register_executor,
)
from repro.harness.execution import process as process_module
from repro.harness.execution.registry import unregister_executor


def _double(task):
    return task * 2


def _fail(task):
    raise RuntimeError(f"boom on {task}")


def _crash_once(flag_path):
    """Die the first time any worker runs this; succeed after the flag exists.

    Top-level (picklable) and keyed on a filesystem flag so the "already
    crashed" state survives the worker's death.
    """
    if not os.path.exists(flag_path):
        with open(flag_path, "w") as handle:
            handle.write("crashed")
        os._exit(13)
    return "recovered"


def _crash_always(task):
    os._exit(13)


def _crash_once_task(task):
    flag_path, payload = task
    if not os.path.exists(flag_path):
        with open(flag_path, "w") as handle:
            handle.write("crashed")
        os._exit(13)
    return payload * 10


class TestCallWithRetries:
    def test_success_needs_no_retries(self):
        assert call_with_retries(_double, 21) == 42

    def test_zero_retries_fails_fast(self):
        calls = []

        def flaky(task):
            calls.append(task)
            raise ValueError("nope")

        with pytest.raises(ValueError):
            call_with_retries(flaky, "x", retries=0, backoff=0)
        assert len(calls) == 1

    def test_retries_until_success(self):
        calls = []

        def flaky(task):
            calls.append(task)
            if len(calls) < 3:
                raise ValueError("transient")
            return "done"

        assert call_with_retries(flaky, "x", retries=5, backoff=0) == "done"
        assert len(calls) == 3

    def test_final_failure_propagates_unchanged(self):
        error = KeyError("original")

        def always(task):
            raise error

        with pytest.raises(KeyError) as excinfo:
            call_with_retries(always, "x", retries=2, backoff=0)
        assert excinfo.value is error

    def test_backoff_doubles_per_attempt(self):
        sleeps = []
        with mock.patch("time.sleep", sleeps.append):
            with pytest.raises(ValueError):
                call_with_retries(_raise_value_error, "x", retries=3, backoff=0.1)
        assert sleeps == [0.1, 0.2, 0.4]


def _raise_value_error(task):
    raise ValueError("always")


class TestExecutorConstruction:
    def test_retries_must_be_non_negative(self):
        with pytest.raises(ValueError, match="retries"):
            SerialExecutor(retries=-1)

    def test_backoff_must_be_non_negative(self):
        with pytest.raises(ValueError, match="retry_backoff"):
            SerialExecutor(retry_backoff=-0.5)

    def test_defaults(self):
        executor = SerialExecutor()
        assert executor.retries == 0
        assert executor.retry_backoff == DEFAULT_RETRY_BACKOFF

    def test_create_executor_forwards_retry_settings(self):
        executor = create_executor("serial", retries=3, retry_backoff=0.25)
        assert executor.retries == 3
        assert executor.retry_backoff == 0.25

    def test_create_executor_tolerates_legacy_signatures(self):
        class LegacyExecutor(Executor):
            name = "test_legacy"
            description = "jobs-only constructor"

            def __init__(self, jobs=None):
                super().__init__(jobs=jobs)

            def run_tasks(self, fn, tasks, progress=None):
                return [fn(task) for task in tasks]

        register_executor(LegacyExecutor)
        try:
            # No retry settings requested: the legacy __init__(jobs) still works.
            executor = create_executor("test_legacy")
            assert executor.retries == 0
        finally:
            unregister_executor("test_legacy")


class TestSerialRetries:
    def test_serial_retries_flaky_task(self, tmp_path):
        flag = tmp_path / "failed-once"

        def flaky(task):
            if not flag.exists():
                flag.write_text("yes")
                raise RuntimeError("transient")
            return task + 1

        executor = SerialExecutor(retries=1, retry_backoff=0)
        assert executor.run_tasks(flaky, [1, 2]) == [2, 3]

    def test_serial_fail_fast_without_retries(self):
        executor = SerialExecutor()
        with pytest.raises(RuntimeError, match="boom"):
            executor.run_tasks(_fail, [1])


class TestProcessPoolCrashRecovery:
    """These force the pool path on the single-CPU CI host by disabling the
    serial fallback; worker death then exercises the rebuild machinery."""

    @pytest.fixture(autouse=True)
    def _force_pool(self):
        with mock.patch.object(
            process_module, "serial_fallback_reason", lambda jobs, n: None
        ):
            yield

    def test_task_exception_fails_fast(self):
        executor = ProcessExecutor(jobs=2)
        with pytest.raises(RuntimeError, match="boom"):
            executor.run_tasks(_fail, [1, 2])

    def test_worker_crash_is_resubmitted(self, tmp_path):
        flag = str(tmp_path / "crashed-once")
        executor = ProcessExecutor(jobs=2)
        results = executor.run_tasks(_crash_once, [flag, flag, flag])
        assert results == ["recovered", "recovered", "recovered"]

    def test_progress_stays_ordered_across_rebuild(self, tmp_path):
        flag = str(tmp_path / "crashed-once")
        executor = ProcessExecutor(jobs=2)
        seen = []

        def progress(index, task, result):
            seen.append(index)

        tasks = [(flag, 1), (flag, 2), (flag, 3)]
        results = executor.run_tasks(_crash_once_task, tasks, progress)
        assert results == [10, 20, 30]
        assert seen == sorted(seen)
        assert set(seen) == {0, 1, 2}

    def test_deterministic_crash_is_bounded(self):
        executor = ProcessExecutor(jobs=2)
        with pytest.raises(BrokenProcessPool, match="giving up"):
            executor.run_tasks(_crash_always, [1, 2])

    def test_rebuild_limit_mentioned_in_failure(self):
        executor = ProcessExecutor(jobs=2)
        with pytest.raises(BrokenProcessPool, match=str(MAX_POOL_REBUILDS)):
            executor.run_tasks(_crash_always, [1, 2])
