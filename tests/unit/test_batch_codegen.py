"""Unit tests for the fused batch closures (parametrize_expr / compile_batch)."""

from __future__ import annotations

import pytest

from repro.predicates import EvaluationError, compile_predicate, evaluate
from repro.predicates.codegen import compile_batch, parametrize_expr
from repro.predicates.evaluator import _EMPTY_LOCALS, read_shared


def expr_of(source, shared):
    return compile_predicate(source, shared).globalized().expr


class TestParametrize:
    def test_constants_become_slots(self):
        shape, params = parametrize_expr(expr_of("count > 3", {"count"}))
        assert params == (3,)
        other_shape, other_params = parametrize_expr(expr_of("count > 7", {"count"}))
        assert other_params == (7,)
        # Same structure, different constants: one shared shape.
        assert shape == other_shape

    def test_different_structure_different_shape(self):
        shape_gt, _ = parametrize_expr(expr_of("count > 1", {"count"}))
        shape_eq, _ = parametrize_expr(expr_of("count == 1", {"count"}))
        shape_other_name, _ = parametrize_expr(expr_of("total > 1", {"total"}))
        assert shape_gt != shape_eq
        assert shape_gt != shape_other_name

    def test_constant_free_predicate_has_empty_params(self):
        shape, params = parametrize_expr(expr_of("flag", {"flag"}))
        assert params == ()
        assert compile_batch(shape) is not None


class TestCompileBatch:
    def test_batch_matches_per_predicate_evaluation(self):
        state = {"count": 5}
        sources = [f"count > {i}" for i in range(10)]
        exprs = [expr_of(source, {"count"}) for source in sources]
        forms = [parametrize_expr(expr) for expr in exprs]
        shapes = {shape for shape, _ in forms}
        assert len(shapes) == 1, "same-structure predicates must share a shape"
        fn = compile_batch(next(iter(shapes)))
        assert fn is not None
        rows = [params for _, params in forms]
        results = fn(rows, state, read_shared, _EMPTY_LOCALS)
        expected = [bool(evaluate(expr, state)) for expr in exprs]
        assert results == expected == [True] * 5 + [False] * 5

    def test_batch_fn_is_memoized_per_shape(self):
        shape_a, _ = parametrize_expr(expr_of("count >= 2", {"count"}))
        shape_b, _ = parametrize_expr(expr_of("count >= 9", {"count"}))
        assert compile_batch(shape_a) is compile_batch(shape_b)

    def test_none_shape_returns_none(self):
        assert compile_batch(None) is None

    def test_batch_raises_evaluation_error_like_the_engines(self):
        shape, params = parametrize_expr(expr_of("missing > 1", {"missing"}))
        fn = compile_batch(shape)
        assert fn is not None
        with pytest.raises(EvaluationError):
            fn([params], {}, read_shared, _EMPTY_LOCALS)

    def test_batch_results_are_bools(self):
        shape, params = parametrize_expr(expr_of("count + 1", {"count"}))
        fn = compile_batch(shape)
        results = fn([params], {"count": 3}, read_shared, _EMPTY_LOCALS)
        assert results == [True]
        assert isinstance(results[0], bool)
