"""Shared fixtures and helpers for the AutoSynch reproduction test suite."""

from __future__ import annotations

import pytest

from repro.runtime import SimulationBackend, ThreadingBackend


@pytest.fixture
def sim_backend():
    """A fresh deterministic simulation backend (FIFO policy, seed 0)."""
    return SimulationBackend(seed=0)


@pytest.fixture
def random_sim_backend():
    """A simulation backend with randomized (but seeded) scheduling."""
    return SimulationBackend(seed=1234, policy="random")


@pytest.fixture
def threading_backend():
    """A real-thread backend."""
    return ThreadingBackend()


@pytest.fixture(params=["fifo", "random"])
def any_sim_backend(request):
    """Simulation backend under both scheduling policies."""
    return SimulationBackend(seed=7, policy=request.param)


class StateStub:
    """Simple attribute bag used as monitor state in predicate tests."""

    def __init__(self, **attributes):
        for name, value in attributes.items():
            setattr(self, name, value)


@pytest.fixture
def state_stub():
    return StateStub
