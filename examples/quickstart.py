#!/usr/bin/env python3
"""Quickstart: an automatic-signal bounded buffer in a few lines.

This is the paper's Fig. 1 example.  There are no condition variables and no
signal calls anywhere: each method states *what it waits for* with
``wait_until`` and the AutoSynch runtime decides which thread to wake.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

import threading

from repro import AutoSynchMonitor


class BoundedBuffer(AutoSynchMonitor):
    """A FIFO buffer with a fixed capacity."""

    def __init__(self, capacity: int, **monitor_kwargs):
        super().__init__(**monitor_kwargs)
        self.items = []
        self.capacity = capacity

    def put(self, item):
        """Add an item, waiting while the buffer is full."""
        self.wait_until("len(items) < capacity")
        self.items.append(item)

    def take(self):
        """Remove the oldest item, waiting while the buffer is empty."""
        self.wait_until("len(items) > 0")
        return self.items.pop(0)


def main() -> None:
    buffer = BoundedBuffer(capacity=4)
    produced = list(range(50))
    consumed = []

    def producer() -> None:
        for item in produced:
            buffer.put(item)

    def consumer() -> None:
        for _ in produced:
            consumed.append(buffer.take())

    threads = [threading.Thread(target=producer), threading.Thread(target=consumer)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    print(f"produced {len(produced)} items, consumed {len(consumed)} items")
    print(f"FIFO order preserved: {consumed == produced}")

    stats = buffer.stats
    print("\nwhat the runtime did on your behalf:")
    print(f"  monitor entries        : {stats.entries}")
    print(f"  threads put to sleep   : {stats.waits}")
    print(f"  threads woken (signals): {stats.signals_sent}")
    print(f"  predicate evaluations  : {stats.predicate_evaluations}")
    print(f"  spurious wake-ups      : {stats.spurious_wakeups}")
    print("\nNote: not a single signal/notify call appears in BoundedBuffer.")


if __name__ == "__main__":
    main()
