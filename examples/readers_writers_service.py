#!/usr/bin/env python3
"""A tiny in-memory configuration store with fair reader/writer access.

This example uses the *preprocessor* front end: the ``ConfigStore`` class
below is written with bare ``waituntil(...)`` statements and the
``@autosynch`` decorator rewrites it at import time — the same programming
model as the paper's ``AutoSynch class`` (Fig. 1, right-hand side).

Access is ticket-ordered (the readers/writers variant the paper evaluates in
Fig. 12): requests are served in arrival order, consecutive readers share the
store, and a writer gets exclusive access.

Run it with::

    python examples/readers_writers_service.py
"""

from __future__ import annotations

import random
import threading

from repro.preprocessor import autosynch, waituntil


@autosynch
class ConfigStore:
    """Ticket-ordered readers/writers lock around a dict of settings."""

    def __init__(self):
        self.settings = {"timeout": 30, "retries": 3}
        self.next_ticket = 0
        self.serving = 0
        self.active_readers = 0
        self.writer_active = False
        self.reads = 0
        self.writes = 0

    # -- reader side -----------------------------------------------------

    def begin_read(self):
        ticket = self.next_ticket
        self.next_ticket += 1
        waituntil(self.serving == ticket and not self.writer_active)
        self.active_readers += 1
        self.serving += 1
        return ticket

    def end_read(self):
        self.active_readers -= 1
        self.reads += 1

    # -- writer side -----------------------------------------------------

    def begin_write(self):
        ticket = self.next_ticket
        self.next_ticket += 1
        waituntil(
            self.serving == ticket
            and self.active_readers == 0
            and not self.writer_active
        )
        self.writer_active = True
        return ticket

    def end_write(self):
        self.writer_active = False
        self.writes += 1
        self.serving += 1


def main() -> None:
    store = ConfigStore()
    rng = random.Random(42)
    observed = []

    def reader(name: str, iterations: int) -> None:
        for _ in range(iterations):
            store.begin_read()
            try:
                observed.append((name, dict(store.settings)))
            finally:
                store.end_read()

    def writer(name: str, iterations: int) -> None:
        for index in range(iterations):
            store.begin_write()
            try:
                store.settings["timeout"] = 30 + index
                store.settings["owner"] = name
            finally:
                store.end_write()

    threads = [
        threading.Thread(target=reader, args=(f"reader-{i}", 40), name=f"reader-{i}")
        for i in range(6)
    ] + [
        threading.Thread(target=writer, args=(f"writer-{i}", 15), name=f"writer-{i}")
        for i in range(2)
    ]
    rng.shuffle(threads)
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    print(f"reads completed  : {store.reads}")
    print(f"writes completed : {store.writes}")
    print(f"final settings   : {store.settings}")
    print(f"requests served  : {store.serving} (tickets issued: {store.next_ticket})")
    stats = store.stats
    print("runtime activity :",
          f"waits={stats.waits}",
          f"signals={stats.signals_sent}",
          f"predicate evaluations={stats.predicate_evaluations}")
    print("\nThe class contains no condition variables and no signal calls —")
    print("the @autosynch decorator and the condition manager do the signalling.")


if __name__ == "__main__":
    main()
