#!/usr/bin/env python3
"""A warehouse fulfilment pipeline built from AutoSynch monitors.

Scenario (the kind of batched producer/consumer workload the paper's
introduction motivates):

* *pickers* place picked items onto a conveyor with limited capacity,
  in batches of varying size;
* *packers* take exactly the number of items one order needs — different
  orders need different amounts, so each packer waits for a different
  condition (the parameterized bounded-buffer pattern of Fig. 1);
* packed orders go to a loading dock, and a *truck* departs only when a full
  load of orders is ready.

With explicit condition variables the conveyor would need ``signalAll``
(nobody knows which packer can be satisfied).  With AutoSynch each monitor
method just states its waiting condition; run the example to see how few
threads are woken.

Run it with::

    python examples/warehouse_pipeline.py [--mechanism NAME]

where ``NAME`` is any registered signalling policy (``autosynch``,
``autosynch_t``, ``baseline``, ``relay_batched``, ``relay_fifo``, ...).
"""

from __future__ import annotations

import argparse
import random
import threading

from repro import AutoSynchMonitor


class Conveyor(AutoSynchMonitor):
    """Bounded conveyor belt between pickers and packers."""

    def __init__(self, capacity: int, **monitor_kwargs):
        super().__init__(**monitor_kwargs)
        self.capacity = capacity
        self.items = 0

    def load(self, batch: int) -> None:
        """A picker adds *batch* items, waiting until they all fit."""
        self.wait_until("items + batch <= capacity", batch=batch)
        self.items += batch

    def pick_for_order(self, needed: int) -> None:
        """A packer removes exactly *needed* items, waiting until available."""
        self.wait_until("items >= needed", needed=needed)
        self.items -= needed


class LoadingDock(AutoSynchMonitor):
    """Orders accumulate here until a truck can take a full load."""

    def __init__(self, truck_capacity: int, **monitor_kwargs):
        super().__init__(**monitor_kwargs)
        self.truck_capacity = truck_capacity
        self.ready_orders = 0
        self.shipped_orders = 0
        self.trucks_dispatched = 0
        self.closing = False

    def deliver_order(self) -> None:
        self.ready_orders += 1

    def dispatch_truck(self) -> bool:
        """The truck waits for a full load (or the end of the shift)."""
        self.wait_until("ready_orders >= truck_capacity or closing")
        if self.ready_orders >= self.truck_capacity:
            self.ready_orders -= self.truck_capacity
            self.shipped_orders += self.truck_capacity
            self.trucks_dispatched += 1
            return True
        # End of shift: take whatever is left.
        self.shipped_orders += self.ready_orders
        self.ready_orders = 0
        return False

    def end_of_shift(self) -> None:
        self.closing = True


def run_pipeline(mechanism: str, orders: int, seed: int) -> None:
    rng = random.Random(seed)
    conveyor = Conveyor(capacity=64, signalling=mechanism)
    dock = LoadingDock(truck_capacity=8, signalling=mechanism)

    order_sizes = [rng.randint(1, 12) for _ in range(orders)]
    total_items = sum(order_sizes)

    def picker() -> None:
        remaining = total_items
        while remaining > 0:
            batch = min(remaining, rng.randint(4, 16))
            conveyor.load(batch)
            remaining -= batch

    def packer(start: int, step: int) -> None:
        for index in range(start, len(order_sizes), step):
            conveyor.pick_for_order(order_sizes[index])
            dock.deliver_order()

    def truck() -> None:
        while dock.dispatch_truck():
            pass

    packers = 4
    workers = [threading.Thread(target=picker, name="picker")]
    workers += [
        threading.Thread(target=packer, args=(i, packers), name=f"packer-{i}")
        for i in range(packers)
    ]
    truck_thread = threading.Thread(target=truck, name="truck")

    truck_thread.start()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    dock.end_of_shift()
    truck_thread.join()

    print(f"mechanism           : {mechanism}")
    print(f"orders fulfilled    : {dock.shipped_orders} / {orders}")
    print(f"items moved         : {total_items}")
    print(f"trucks dispatched   : {dock.trucks_dispatched}")
    print("conveyor monitor    :",
          f"waits={conveyor.stats.waits}",
          f"signals={conveyor.stats.signals_sent}",
          f"signal_alls={conveyor.stats.signal_alls_sent}",
          f"spurious wakeups={conveyor.stats.spurious_wakeups}")
    print("loading dock monitor:",
          f"waits={dock.stats.waits}",
          f"signals={dock.stats.signals_sent}",
          f"spurious wakeups={dock.stats.spurious_wakeups}")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    from repro.core.signalling import available_policies

    parser.add_argument(
        "--mechanism",
        choices=available_policies(),
        default=None,
        help="signalling policy (default: compare the paper's three mechanisms)",
    )
    parser.add_argument("--orders", type=int, default=200, help="number of orders to fulfil")
    parser.add_argument("--seed", type=int, default=7, help="workload random seed")
    args = parser.parse_args()

    mechanisms = [args.mechanism] if args.mechanism else ["autosynch", "autosynch_t", "baseline"]
    for mechanism in mechanisms:
        run_pipeline(mechanism, orders=args.orders, seed=args.seed)


if __name__ == "__main__":
    main()
