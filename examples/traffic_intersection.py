#!/usr/bin/env python3
"""A traffic-intersection controller on the deterministic simulation backend.

Cars arrive from four directions and may only enter the intersection while
their direction has a green light and the intersection is not full; a
controller thread rotates the green light.  Every waiting condition is a
``wait_until`` predicate — the direction check is an equivalence predicate
(``green == direction``), exactly the pattern AutoSynch's tag hash indexes.

The example runs on the *simulation* backend, so the schedule is reproducible
bit-for-bit: running it twice with the same seed prints identical context
switch and signalling counts.  Change ``--seed`` to explore other schedules.

Run it with::

    python examples/traffic_intersection.py [--seed 3] [--cars 12] [--crossings 5]
"""

from __future__ import annotations

import argparse

from repro import AutoSynchMonitor, SimulationBackend

DIRECTIONS = ("north", "east", "south", "west")


class Intersection(AutoSynchMonitor):
    """Monitor coordinating cars and the light controller."""

    def __init__(self, capacity: int = 2, phase_quota: int = 4, **monitor_kwargs):
        super().__init__(**monitor_kwargs)
        self.capacity = capacity
        self.phase_quota = phase_quota
        self.green = 0
        self.inside = 0
        self.pending = [0, 0, 0, 0]
        self.total_pending = 0
        self.crossed_this_phase = 0
        self.crossings = [0, 0, 0, 0]
        self.phases = 0
        self.closing = False

    # -- car side ---------------------------------------------------------

    def arrive(self, direction: int) -> None:
        self.pending[direction] += 1
        self.total_pending += 1

    def enter(self, direction: int) -> None:
        """Wait for a green light and free space, then enter the intersection."""
        self.wait_until("green == d and inside < capacity", d=direction)
        self.pending[direction] -= 1
        self.total_pending -= 1
        self.inside += 1

    def leave(self, direction: int) -> None:
        self.inside -= 1
        self.crossings[direction] += 1
        self.crossed_this_phase += 1

    # -- controller side ----------------------------------------------------

    def rotate_light(self) -> bool:
        """Switch to the next direction when the current phase is exhausted."""
        self.wait_until(
            "((crossed_this_phase >= phase_quota or pending[green] == 0)"
            " and total_pending > 0) or closing"
        )
        if self.closing:
            return False
        self.green = (self.green + 1) % 4
        self.crossed_this_phase = 0
        self.phases += 1
        return True

    def close(self) -> None:
        self.closing = True

    # -- supervisor side ------------------------------------------------------

    def wait_for_total(self, expected: int) -> None:
        """Block until *expected* crossings have completed (shift is over)."""
        self.wait_until("sum(crossings) >= expected", expected=expected)


def run(seed: int, cars_per_direction: int, crossings_per_car: int) -> None:
    backend = SimulationBackend(seed=seed, policy="random")
    intersection = Intersection(backend=backend)

    def car(direction: int):
        def body() -> None:
            for _ in range(crossings_per_car):
                intersection.arrive(direction)
                intersection.enter(direction)
                intersection.leave(direction)
        return body

    def controller() -> None:
        while intersection.rotate_light():
            pass

    car_bodies = []
    car_names = []
    for direction in range(4):
        for index in range(cars_per_direction):
            car_bodies.append(car(direction))
            car_names.append(f"car-{DIRECTIONS[direction]}-{index}")

    # The shift supervisor: in the simulation it cannot join threads, so car
    # completion is observed through the monitor itself — once every car has
    # crossed its quota the intersection is closed and the controller exits.
    def supervisor() -> None:
        expected = 4 * cars_per_direction * crossings_per_car
        intersection.wait_for_total(expected)
        intersection.close()

    backend.run(
        [controller, supervisor] + car_bodies,
        ["controller", "supervisor"] + car_names,
    )

    total = sum(intersection.crossings)
    print(f"seed={seed}  cars/direction={cars_per_direction}  crossings/car={crossings_per_car}")
    for direction, name in enumerate(DIRECTIONS):
        print(f"  {name:5s}: {intersection.crossings[direction]} crossings")
    print(f"  total crossings : {total}")
    print(f"  light phases    : {intersection.phases}")
    print(f"  context switches: {backend.metrics.context_switches}")
    print(f"  signals sent    : {intersection.stats.signals_sent}")
    print(f"  predicate evals : {intersection.stats.predicate_evaluations}")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--cars", type=int, default=6, help="cars per direction")
    parser.add_argument("--crossings", type=int, default=4, help="crossings per car")
    args = parser.parse_args()

    print("first run:")
    run(args.seed, args.cars, args.crossings)
    print("second run with the same seed (identical by construction):")
    run(args.seed, args.cars, args.crossings)


if __name__ == "__main__":
    main()
